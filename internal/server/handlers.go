package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/wire"
	"github.com/chrec/rat/internal/worksheet"
)

// jsonMarshal is encoding/json.Marshal, named so the remaining
// cold-path wire-writing sites (errors, status, explore) read
// uniformly. The predict paths use internal/wire instead.
func jsonMarshal(v any) ([]byte, error) { return json.Marshal(v) }

// httpStatus maps a request-shaped error to its status code: anything
// wrapping the invalid-parameters or worksheet-syntax sentinels is the
// caller's fault (400); context expiry is 504; the rest is 500.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalidParameters), errors.Is(err, worksheet.ErrSyntax):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// maxInternedNames bounds the per-scratch worksheet-name intern table;
// a vocabulary churning past it resets the table rather than growing
// without bound.
const maxInternedNames = 1024

// scratch is the pooled per-request working set of the predict paths:
// the body read buffer, the cache-key buffer, the response build
// buffer and the worksheet-name intern table. One Get covers a whole
// request; nothing in it survives the handler.
type scratch struct {
	body []byte
	key  []byte
	raw  []byte
	out  []byte

	names map[string]string
	// internFn is the bound method value of intern, created once per
	// scratch so handing it to the decoder does not allocate a closure
	// per request.
	internFn func([]byte) string
}

var scratchPool = sync.Pool{New: func() any {
	sc := &scratch{
		body: make([]byte, 0, 4096),
		key:  make([]byte, 0, 160),
		raw:  make([]byte, 0, 1024),
		out:  make([]byte, 0, 2048),
	}
	sc.internFn = sc.intern
	return sc
}}

// intern returns the string form of a worksheet name, reusing the
// previously allocated string for repeat names — the steady-state
// traffic pattern (the same few worksheets asked about over and over)
// decodes names with zero allocations.
func (sc *scratch) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := sc.names[string(b)]; ok { // no-alloc map lookup
		return s
	}
	if sc.names == nil || len(sc.names) >= maxInternedNames {
		sc.names = make(map[string]string, 8)
	}
	s := string(b)
	sc.names[s] = s
	return s
}

// readBody slurps the request body into the pooled buffer, enforcing
// the configured size cap. Oversized and unreadable bodies are the
// caller's fault (ErrSyntax maps to 400), matching what
// http.MaxBytesReader fed to a JSON decoder produced before.
//
//rat:hotpath
func (sc *scratch) readBody(body io.Reader, limit int64) ([]byte, error) {
	buf := sc.body[:0]
	for {
		if int64(len(buf)) > limit {
			sc.body = buf
			return nil, fmt.Errorf("%w: request body larger than %d bytes", worksheet.ErrSyntax, limit)
		}
		if len(buf) == cap(buf) {
			next := 2 * cap(buf)
			if next == 0 {
				next = 4096
			}
			if int64(next) > limit+1 {
				next = int(limit + 1)
			}
			if next <= cap(buf) {
				next = cap(buf) + 1
			}
			grown := make([]byte, len(buf), next)
			copy(grown, buf)
			buf = grown
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			sc.body = buf
			if errors.Is(err, io.EOF) {
				if int64(len(buf)) > limit {
					return nil, fmt.Errorf("%w: request body larger than %d bytes", worksheet.ErrSyntax, limit)
				}
				return buf, nil
			}
			return nil, fmt.Errorf("%w: reading request body: %v", worksheet.ErrSyntax, err)
		}
	}
}

// multiConfigFromQuery parses the optional devices/topology query
// parameters. Failures wrap core.ErrInvalidParameters (400).
func multiConfigFromQuery(devicesQ, topologyQ string) (core.MultiConfig, error) {
	cfg := core.MultiConfig{Devices: 1, Topology: core.SharedChannel}
	if devicesQ != "" {
		n, err := strconv.Atoi(devicesQ)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("%w: devices parameter must be a positive integer (got %q)",
				core.ErrInvalidParameters, devicesQ)
		}
		cfg.Devices = n
	}
	if topologyQ != "" {
		topo, err := api.ParseTopology(topologyQ)
		if err != nil {
			return cfg, fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		}
		cfg.Topology = topo
	}
	return cfg, nil
}

// decodePredictRequest parses the body of POST /v1/predict — the JSON
// worksheet form — plus the optional devices/topology query
// parameters. Every failure wraps core.ErrInvalidParameters or
// worksheet.ErrSyntax, so hostile bodies always map to 400, never to a
// panic or 500 (pinned by FuzzDecodeWorksheetRequest).
func decodePredictRequest(body []byte, devicesQ, topologyQ string) (core.Parameters, core.MultiConfig, error) {
	p, err := wire.DecodeWorksheet(body)
	if err != nil {
		return core.Parameters{}, core.MultiConfig{}, err
	}
	cfg, err := multiConfigFromQuery(devicesQ, topologyQ)
	if err != nil {
		return core.Parameters{}, core.MultiConfig{}, err
	}
	return p, cfg, nil
}

// handlePredict serves POST /v1/predict: one worksheet in, one
// prediction out — bit-for-bit what rat.Predict (or rat.PredictMulti
// with ?devices=N) returns for the same worksheet. Either side of the
// exchange may independently be JSON (the default) or the binary wire
// format: Content-Type: application/x-rat-bin marks a binary request
// body, Accept: application/x-rat-bin asks for a binary response.
//
// The whole path runs over pooled buffers through the hand-rolled
// internal/wire codec: a steady-state cache hit performs zero
// allocations, and a cache miss only pays the kernel plus the response
// render. Per-stage clocks (admission, cache, batch_wait, kernel,
// encode) are read only when the request carries a trace identity;
// untraced requests skip all stage bookkeeping.
//
//rat:hotpath
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	tr := traceOf(w)
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	weight, ok := s.admPredict.admit(r.Context(), 1)
	if !ok {
		writeTooBusy(w, "/v1/predict")
		return
	}
	defer s.admPredict.release(weight)
	if tr != nil {
		s.stageTr(tr, obs.StageAdmission, time.Since(t0))
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err) // admitted after disconnect: abandon, never execute late
		return
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	body, err := sc.readBody(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	binReq := r.Header.Get("Content-Type") == wire.ContentTypeBinary
	binResp := r.Header.Get("Accept") == wire.ContentTypeBinary
	format := formatJSON
	if binResp {
		format = formatBinary
	}

	// Steady-state fast path: a client replaying byte-identical request
	// bytes is answered from the raw-alias index without decoding the
	// worksheet at all.
	if s.cache != nil {
		if tr != nil {
			t0 = time.Now()
		}
		sc.raw = appendRawKey(sc.raw[:0], body, r.URL.RawQuery, binReq, format)
		cached, hit := s.cache.getRaw(sc.raw)
		if hit {
			if tr != nil {
				s.stageTr(tr, obs.StageCache, time.Since(t0))
			}
			setStagesHeaderTr(w, r, tr)
			writeBody(w, cached, binResp)
			return
		}
	}

	var p core.Parameters
	if binReq {
		p, err = wire.DecodeBinaryWorksheet(body, sc.internFn)
	} else {
		p, err = wire.DecodeWorksheetIntern(body, sc.internFn)
	}
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	cfg := core.MultiConfig{Devices: 1, Topology: core.SharedChannel}
	if r.URL.RawQuery != "" { // Query() allocates; the common request has no query
		q := r.URL.Query()
		cfg, err = multiConfigFromQuery(q.Get("devices"), q.Get("topology"))
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
	}

	if s.cache != nil {
		if tr != nil {
			t0 = time.Now()
		}
		sc.key = appendCacheKey(sc.key[:0], &p, cfg, format)
		cached, hit := s.cache.get(sc.key, sc.raw)
		if tr != nil {
			s.stageTr(tr, obs.StageCache, time.Since(t0))
		}
		if hit {
			setStagesHeaderTr(w, r, tr)
			writeBody(w, cached, binResp)
			return
		}
	}

	sc.out = sc.out[:0]
	if cfg.Devices == 1 {
		var pr core.Prediction
		if s.batcher.coalescing() {
			// Only the coalescing path can actually wait, so only it
			// needs a deadline-carrying context.
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.PredictTimeout)
			if tr != nil {
				t0 = time.Now()
			}
			var kernelNs int64
			pr, kernelNs, err = s.batcher.predict(ctx, p)
			cancel()
			if tr != nil {
				wait := time.Since(t0) - time.Duration(kernelNs)
				if wait < 0 {
					wait = 0
				}
				s.stageTr(tr, obs.StageBatchWait, wait)
				s.stageTr(tr, obs.StageKernel, time.Duration(kernelNs))
			}
		} else {
			if tr != nil {
				t0 = time.Now()
			}
			pr, err = core.Predict(p)
			if tr != nil {
				s.stageTr(tr, obs.StageKernel, time.Since(t0))
			}
		}
		if err != nil {
			writeError(w, httpStatus(err), err)
			return
		}
		if tr != nil {
			t0 = time.Now()
		}
		apiPr := api.PredictionFromCore(pr)
		if binResp {
			sc.out = wire.AppendBinaryPrediction(sc.out, &apiPr)
		} else {
			sc.out, err = wire.AppendPrediction(sc.out, &apiPr)
		}
		if tr != nil {
			s.stageTr(tr, obs.StageEncode, time.Since(t0))
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	} else {
		if tr != nil {
			t0 = time.Now()
		}
		mp, merr := core.PredictMulti(p, cfg)
		if tr != nil {
			s.stageTr(tr, obs.StageKernel, time.Since(t0))
		}
		if merr != nil {
			writeError(w, httpStatus(merr), merr)
			return
		}
		if tr != nil {
			t0 = time.Now()
		}
		apiMp := api.MultiPredictionFromCore(mp)
		if binResp {
			sc.out = wire.AppendBinaryMultiPrediction(sc.out, &apiMp)
		} else {
			sc.out, merr = wire.AppendMultiPrediction(sc.out, &apiMp)
		}
		if tr != nil {
			s.stageTr(tr, obs.StageEncode, time.Since(t0))
		}
		if merr != nil {
			writeError(w, http.StatusInternalServerError, merr)
			return
		}
	}
	if s.cache != nil && s.cacheFillAllowed() {
		s.cache.put(sc.key, sc.raw, sc.out)
	}
	setStagesHeaderTr(w, r, tr)
	writeBody(w, sc.out, binResp)
}

// batchSlabs pools the parameter/prediction slabs behind
// /v1/predict/batch so steady-state batch serving reuses storage
// rather than allocating per request.
var batchSlabs = sync.Pool{New: func() any { return &slab{} }}

// handleBatch serves POST /v1/predict/batch: an array of worksheets —
// JSON by default, one binary frame with Content-Type:
// application/x-rat-bin — fanned into one core.PredictBatch evaluation
// over a pooled slab. Response element i is bit-for-bit rat.Predict of
// worksheet i; Accept: application/x-rat-bin selects the binary
// response frame, the cheap choice for bulk traffic.
//
//rat:hotpath
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tr := traceOf(w)
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	body, err := sc.readBody(r.Body, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	sl := batchSlabs.Get().(*slab)
	defer batchSlabs.Put(sl)
	sl.ps = sl.ps[:0]
	if r.Header.Get("Content-Type") == wire.ContentTypeBinary {
		sl.ps, err = wire.DecodeBinaryWorksheetBatch(body, sl.ps, sc.internFn)
	} else {
		sl.ps, err = wire.DecodeWorksheetDocs(body, sl.ps, sc.internFn)
	}
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	if len(sl.ps) == 0 {
		err := fmt.Errorf("%w: batch is empty", core.ErrInvalidParameters)
		writeError(w, httpStatus(err), err)
		return
	}

	// The tenancy layer charged 1 token before the body was readable;
	// top up to 1 per worksheet now that the count is known.
	if sw, ok := w.(*statusWriter); ok && sw.member != nil && len(sl.ps) > 1 {
		if ok, retry := sw.member.Bucket().Take(time.Now(), float64(len(sl.ps)-1)); !ok {
			sw.tstat.rejectQuota.Inc()
			sw.quotaShed = true
			writeQuotaExceeded(w, sw.member.Name, retry)
			return
		}
	}

	// Weight admission by worksheet count: a 1000-worksheet batch
	// holds proportionally more of the endpoint's capacity than a
	// 2-worksheet one (clamped to the endpoint limit).
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	weight, ok := s.admBatch.admit(r.Context(), int64(len(sl.ps)))
	if !ok {
		writeTooBusy(w, "/v1/predict/batch")
		return
	}
	defer s.admBatch.release(weight)
	if tr != nil {
		s.stageTr(tr, obs.StageAdmission, time.Since(t0))
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err) // admitted after the deadline: abandon, never execute late
		return
	}

	if cap(sl.out) < len(sl.ps) {
		sl.out = make([]core.Prediction, len(sl.ps))
	}
	sl.out = sl.out[:len(sl.ps)]

	// PredictBatch validates every worksheet up front; the error names
	// the offending index and wraps ErrInvalidParameters.
	if tr != nil {
		t0 = time.Now()
	}
	err = core.PredictBatch(sl.ps, sl.out)
	if tr != nil {
		s.stageTr(tr, obs.StageKernel, time.Since(t0))
	}
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	if tr != nil {
		t0 = time.Now()
	}
	binResp := r.Header.Get("Accept") == wire.ContentTypeBinary
	sc.out = sc.out[:0]
	if binResp {
		sc.out = wire.AppendBinaryPredictions(sc.out, sl.out)
	} else {
		sc.out, err = wire.AppendPredictions(sc.out, sl.out)
	}
	if tr != nil {
		s.stageTr(tr, obs.StageEncode, time.Since(t0))
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	setStagesHeaderTr(w, r, tr)
	writeBody(w, sc.out, binResp)
}

// handleExplore serves POST /v1/explore: a bounded grid search via
// internal/explore. The candidate ceiling is server-enforced; grids
// beyond it are refused outright (413) rather than queued, because no
// deadline could save them. With ?stream=jsonl the response is JSONL:
// top candidates, then frontier candidates when requested, then a
// summary line.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	tr := traceOf(w)
	t0 := time.Now()
	weight, ok := s.admExplore.admit(r.Context(), 1)
	if !ok {
		writeTooBusy(w, "/v1/explore")
		return
	}
	defer s.admExplore.release(weight)
	if tr != nil {
		s.stageTr(tr, obs.StageAdmission, time.Since(t0))
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err) // admitted after the deadline: abandon, never execute late
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req api.ExploreRequest
	if err := dec.Decode(&req); err != nil {
		err = fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		writeError(w, httpStatus(err), err)
		return
	}
	grid, err := req.Grid()
	if err != nil {
		if !errors.Is(err, core.ErrInvalidParameters) {
			err = fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		}
		writeError(w, httpStatus(err), err)
		return
	}
	if err := grid.Validate(); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	// The ceiling applies to the evaluated span: a sharded request
	// (index_lo/index_hi set) is charged for its slice, not the whole
	// grid, so a coordinator can spread a grid far beyond any single
	// node's ceiling across a fleet.
	span := grid.Size()
	if req.IndexLo != 0 || req.IndexHi != 0 {
		if req.IndexHi > span || req.IndexLo >= req.IndexHi {
			err := fmt.Errorf("%w: invalid index range [%d, %d) for grid size %d",
				core.ErrInvalidParameters, req.IndexLo, req.IndexHi, span)
			writeError(w, httpStatus(err), err)
			return
		}
		span = req.IndexHi - req.IndexLo
	}
	// The ceiling is the configured one stepped down by the brownout
	// level: under sustained overload bulk explorations shrink before
	// the interactive path is ever touched.
	if ceiling := s.exploreCeiling(); span > ceiling {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request asks for %d candidates; this server currently caps explorations at %d",
				span, ceiling))
		return
	}
	opts, err := req.Options(s.cfg.ExploreWorkers)
	if err != nil {
		err = fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		writeError(w, httpStatus(err), err)
		return
	}
	opts.Metrics = s.reg
	stream := r.URL.Query().Get("stream") == "jsonl"
	wantSpans := stream && r.URL.Query().Get("spans") == "1"
	opts.CollectSpans = wantSpans

	// The engine has no preemption points, so run it to the side and
	// honor the request deadline at the HTTP layer; the ceiling above
	// bounds how much work an abandoned run can burn.
	type exploreOut struct {
		res explore.Result
		err error
	}
	done := make(chan exploreOut, 1)
	go func() {
		res, err := explore.Run(grid, opts)
		done <- exploreOut{res, err}
	}()
	var res explore.Result
	select {
	case out := <-done:
		if out.err != nil {
			writeError(w, httpStatus(out.err), out.err)
			return
		}
		res = out.res
	case <-r.Context().Done():
		err := r.Context().Err()
		writeError(w, httpStatus(err), err)
		return
	}
	// The engine measures its own elapsed time; that is the kernel
	// stage of an exploration request.
	if tr != nil {
		s.stageTr(tr, obs.StageKernel, res.Elapsed)
	}

	if stream {
		s.writeExploreJSONL(w, r, tr, res, req.Frontier, wantSpans)
		return
	}
	t0 = time.Now()
	out, err := jsonMarshal(api.ExploreResponseFromCore(res, req.Frontier))
	if tr != nil {
		s.stageTr(tr, obs.StageEncode, time.Since(t0))
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	setStagesHeaderTr(w, r, tr)
	writeJSONBytes(w, out)
}

// writeExploreJSONL streams an exploration result as JSONL. Span lines
// (per-shard engine timing) are emitted only when asked for — older
// consumers treat unknown line kinds as an error.
func (s *Server) writeExploreJSONL(w http.ResponseWriter, r *http.Request, tr *obs.Trace, res explore.Result, frontier, spans bool) {
	setStagesHeaderTr(w, r, tr)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	emit := func(line api.ExploreLine) bool { return enc.Encode(line) == nil }
	for i := range res.Top {
		c := api.CandidateFromCore(res.Top[i])
		if !emit(api.ExploreLine{Kind: "top", Candidate: &c}) {
			return
		}
	}
	if frontier {
		for i := range res.Frontier {
			c := api.CandidateFromCore(res.Frontier[i])
			if !emit(api.ExploreLine{Kind: "frontier", Candidate: &c}) {
				return
			}
		}
	}
	if spans {
		for i := range res.Spans {
			sp := res.Spans[i]
			line := api.ShardSpan{
				Shard:          sp.Shard,
				Worker:         sp.Worker,
				Lo:             sp.Lo,
				Hi:             sp.Hi,
				ElapsedSeconds: sp.Elapsed.Seconds(),
			}
			if !emit(api.ExploreLine{Kind: "span", Span: &line}) {
				return
			}
		}
	}
	emit(api.ExploreLine{Kind: "summary", Summary: &api.ExploreSummary{
		Evaluated:        res.Evaluated,
		Feasible:         res.Feasible,
		Workers:          res.Workers,
		ElapsedSeconds:   res.Elapsed.Seconds(),
		CandidatesPerSec: res.CandidatesPerSec,
	}})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleHealthz reports liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz reports readiness: 200 while accepting work, 503 once
// draining so load balancers stop routing here.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// handleMetrics renders the registry. The default is the legacy text
// listing of internal/telemetry — the same listing ratsim -metrics
// prints. Prometheus scrapers (Accept naming format 0.0.4 or
// OpenMetrics, or ?format=prometheus) get the exposition format
// instead; both views include the rat_stage_seconds histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.promSnapshot()
	var buf bytes.Buffer
	if wantsProm(r) {
		if err := telemetry.WriteProm(&buf, snap); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", telemetry.ContentTypeProm)
		w.Write(buf.Bytes())
		return
	}
	if err := telemetry.WriteText(&buf, snap); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}

// newline terminates JSON response bodies, kept as a package var so
// the write does not allocate.
var newline = []byte("\n")

// writeBody answers 200 with a pre-rendered response body in the
// negotiated wire format. The Content-Type set is skipped when the
// header is already present — on a reused recorder that makes the
// cached-hit write allocation-free, and setting the same value twice
// is a no-op anyway. JSON bodies keep their historical trailing
// newline; binary frames are written verbatim.
//
//rat:hotpath
func writeBody(w http.ResponseWriter, body []byte, binary bool) {
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		if binary {
			h["Content-Type"] = contentTypeBinaryValue
		} else {
			h["Content-Type"] = contentTypeJSONValue
		}
	}
	w.Write(body)
	if !binary {
		w.Write(newline)
	}
}

// Pre-built header values: assigning a shared slice avoids the
// per-request []string{v} allocation http.Header.Set performs.
var (
	contentTypeJSONValue   = []string{"application/json"}
	contentTypeBinaryValue = []string{wire.ContentTypeBinary}
)

// writeJSONBytes answers 200 with a pre-marshalled JSON body.
func writeJSONBytes(w http.ResponseWriter, body []byte) { writeBody(w, body, false) }
