package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
)

// TestBatcherBitForBit hammers the coalescer from many goroutines and
// checks every result against the scalar kernel with !=. Run under
// -race this also proves the coalescing protocol is data-race free.
func TestBatcherBitForBit(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := newBatcher(reg, 8, time.Millisecond)

	const workers = 32
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := paper.PDF1DParams()
				p.Comp.ClockHz = core.MHz(float64(1 + (w*perWorker+i)%500))
				want, err := core.Predict(p)
				if err != nil {
					errs <- err
					return
				}
				got, _, err := b.predict(context.Background(), p)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					t.Errorf("worker %d call %d: batched prediction differs from core.Predict", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	requests := workers * perWorker
	if got := snap.Counters["server.batches"]; got == 0 || got > int64(requests) {
		t.Errorf("server.batches = %d, want in (0, %d]", got, requests)
	}
	// With 32 goroutines racing into batches of 8, at least some
	// requests must have shared a batch.
	if snap.Counters["server.coalesced_requests"] == 0 {
		t.Error("no requests were coalesced despite concurrent load")
	}
}

// TestBatcherLingerFlush proves a lone request is not stuck waiting
// for a full batch: the linger timer flushes it.
func TestBatcherLingerFlush(t *testing.T) {
	b := newBatcher(telemetry.NewRegistry(), 64, 2*time.Millisecond)
	p := paper.MDParams()
	want, err := core.Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, _, err := b.predict(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("lingered prediction differs from core.Predict")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("linger flush took %v; timer is not firing", elapsed)
	}
}

// TestBatcherFullBatchImmediate proves the request that fills a batch
// computes it without waiting out the linger.
func TestBatcherFullBatchImmediate(t *testing.T) {
	reg := telemetry.NewRegistry()
	const size = 4
	b := newBatcher(reg, size, time.Hour) // linger would stall any timer-flushed path

	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := paper.PDF2DParams()
			p.Comp.ClockHz = core.MHz(float64(100 + i))
			if _, _, err := b.predict(context.Background(), p); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full batch did not flush without the linger timer")
	}
	if got := reg.Snapshot().Counters["server.coalesced_requests"]; got != size {
		t.Errorf("coalesced_requests = %d, want %d", got, size)
	}
}

// TestBatcherContextCancel: a waiter whose context expires gets the
// context error, and the batch still completes for everyone else.
func TestBatcherContextCancel(t *testing.T) {
	b := newBatcher(telemetry.NewRegistry(), 64, 50*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.predict(ctx, paper.PDF1DParams()); err != context.Canceled {
		t.Errorf("cancelled predict returned %v, want context.Canceled", err)
	}
	// The abandoned slot must not wedge the next caller.
	if _, _, err := b.predict(context.Background(), paper.PDF1DParams()); err != nil {
		t.Errorf("follow-up predict after cancellation: %v", err)
	}
}

// TestCacheLRU exercises eviction order and the disabled (nil) cache.
func TestCacheLRU(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newResponseCache(reg, 2)
	c.put([]byte("a"), nil, []byte("A"))
	c.put([]byte("b"), nil, []byte("B"))
	if _, hit := c.get([]byte("a"), nil); !hit { // bumps a over b
		t.Fatal("a missing")
	}
	c.put([]byte("c"), nil, []byte("C")) // evicts b, the LRU
	if _, hit := c.get([]byte("b"), nil); hit {
		t.Error("b survived eviction; LRU order is wrong")
	}
	if body, hit := c.get([]byte("a"), nil); !hit || string(body) != "A" {
		t.Error("a evicted out of order")
	}
	snap := reg.Snapshot()
	if snap.Counters["server.cache_evictions"] != 1 {
		t.Errorf("evictions = %d, want 1", snap.Counters["server.cache_evictions"])
	}

	var disabled *responseCache // nil: caching off
	disabled.put([]byte("k"), nil, []byte("v"))
	if _, hit := disabled.get([]byte("k"), nil); hit {
		t.Error("nil cache returned a hit")
	}
}

// TestCacheKeyDistinguishesRequests: any parameter or topology change
// must change the key; equal requests must collide.
func TestCacheKeyDistinguishesRequests(t *testing.T) {
	base := paper.PDF1DParams()
	cfg := core.MultiConfig{Devices: 1, Topology: core.SharedChannel}
	if cacheKey(base, cfg) != cacheKey(paper.PDF1DParams(), cfg) {
		t.Error("identical requests produced different keys")
	}
	mutations := []func(*core.Parameters){
		func(p *core.Parameters) { p.Name = p.Name + "x" },
		func(p *core.Parameters) { p.Dataset.ElementsIn++ },
		func(p *core.Parameters) { p.Comm.AlphaWrite += 1e-9 },
		func(p *core.Parameters) { p.Comp.ClockHz *= 1.0000001 },
		func(p *core.Parameters) { p.Soft.Iterations++ },
	}
	for i, mutate := range mutations {
		p := paper.PDF1DParams()
		mutate(&p)
		if cacheKey(p, cfg) == cacheKey(base, cfg) {
			t.Errorf("mutation %d did not change the cache key", i)
		}
	}
	if cacheKey(base, cfg) == cacheKey(base, core.MultiConfig{Devices: 2, Topology: core.SharedChannel}) {
		t.Error("device count not part of the cache key")
	}
	if cacheKey(base, core.MultiConfig{Devices: 2, Topology: core.SharedChannel}) ==
		cacheKey(base, core.MultiConfig{Devices: 2, Topology: core.IndependentChannels}) {
		t.Error("topology not part of the cache key")
	}
}

// TestSemaphoreFIFO covers the admission semaphore directly: capacity
// enforcement, FIFO wakeup within a class, and the cancellation race.
func TestSemaphoreFIFO(t *testing.T) {
	sem := newPrioritySem(0, [numClasses]int64{clsPredict: 2, clsBatch: 2, clsExplore: 2})
	if !sem.tryAcquire(clsPredict, 2) {
		t.Fatal("tryAcquire(2) on an idle semaphore failed")
	}
	if sem.tryAcquire(clsPredict, 1) {
		t.Fatal("tryAcquire over the class limit succeeded")
	}

	acquired := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			if err := sem.acquire(context.Background(), clsPredict, 1); err == nil {
				acquired <- i
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let both queue
	sem.release(clsPredict, 2)
	for i := 0; i < 2; i++ {
		select {
		case <-acquired:
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter never woke")
		}
	}

	// A cancelled waiter must not consume capacity.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sem.acquire(ctx, clsPredict, 2); err == nil {
		t.Fatal("acquire with cancelled context succeeded while full")
	}
	sem.release(clsPredict, 2)
	if !sem.tryAcquire(clsPredict, 2) {
		t.Fatal("capacity lost after cancelled waiter")
	}
	sem.release(clsPredict, 2)
}

// TestSemaphorePriority pins the admission ordering the tenancy layer
// rests on: with the shared pool exhausted, an interactive predict
// waiter that queued AFTER a bulk explore waiter is granted FIRST when
// capacity frees.
func TestSemaphorePriority(t *testing.T) {
	// Total capacity 1: one holder saturates the pool.
	sem := newPrioritySem(1, [numClasses]int64{clsPredict: 1, clsBatch: 1, clsExplore: 1})
	if !sem.tryAcquire(clsExplore, 1) {
		t.Fatal("initial acquire failed")
	}

	granted := make(chan admClass, 2)
	release := make(chan admClass, 2)
	start := func(c admClass) {
		go func() {
			if err := sem.acquire(context.Background(), c, 1); err == nil {
				granted <- c
				<-release
				sem.release(c, 1)
			}
		}()
	}
	start(clsExplore) // bulk queues first...
	time.Sleep(10 * time.Millisecond)
	start(clsPredict) // ...interactive queues second
	time.Sleep(10 * time.Millisecond)

	sem.release(clsExplore, 1) // free the pool: predict must win
	var order []admClass
	for i := 0; i < 2; i++ {
		select {
		case c := <-granted:
			order = append(order, c)
			release <- c
		case <-time.After(5 * time.Second):
			t.Fatal("queued waiter never woke")
		}
	}
	if order[0] != clsPredict || order[1] != clsExplore {
		t.Errorf("grant order = %v, want [predict explore]: interactive must outrank bulk", order)
	}
}

// TestSemaphoreBulkNotStarvedByClassLimit pins the liveness side of
// priority: a predict waiter blocked purely on its own class limit
// does not idle pool capacity that a bulk waiter could use.
func TestSemaphoreBulkNotStarvedByClassLimit(t *testing.T) {
	// Predict class limit 1, plenty of total capacity.
	sem := newPrioritySem(4, [numClasses]int64{clsPredict: 1, clsBatch: 1, clsExplore: 1})
	if !sem.tryAcquire(clsPredict, 1) {
		t.Fatal("initial predict acquire failed")
	}
	// A second predict queues on its class limit (total has room).
	go sem.acquire(context.Background(), clsPredict, 1)
	time.Sleep(10 * time.Millisecond)
	// Bulk must still be admitted: the pool is not exhausted.
	if !sem.tryAcquire(clsExplore, 1) {
		t.Fatal("explore refused while predict was blocked only on its class limit")
	}
	sem.release(clsExplore, 1)
	sem.release(clsPredict, 1) // unblocks the queued predict
}
