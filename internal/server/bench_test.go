package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// BenchmarkServerPredict measures the full in-process request path of
// POST /v1/predict in its steady state — middleware, admission,
// decode, cache hit, write — the per-request overhead ratd adds on
// top of the prediction kernel. Gated in BENCH_4.json: allocation
// counts are deterministic, so any allocs/op increase fails CI.
func BenchmarkServerPredict(b *testing.B) {
	srv := New(Config{MaxBatch: 1}) // direct path; the batcher is benchmarked by its own tests
	h := srv.Handler()
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()

	// Prime the cache so every measured iteration is the hot path.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload)))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
