package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/tenant"
	"github.com/chrec/rat/internal/wire"
	"github.com/chrec/rat/internal/worksheet"
)

// benchBody is a resettable io.ReadCloser over a fixed payload, so the
// measured loop replays the same request body without allocating a new
// reader per iteration.
type benchBody struct{ r bytes.Reader }

func (b *benchBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *benchBody) Close() error               { return nil }

// benchWriter is a minimal ResponseWriter whose header map and body
// buffer persist across iterations. With the fixture reused, the
// benchmarks below measure the server's own allocations, not the test
// harness's.
type benchWriter struct {
	h    http.Header
	buf  []byte
	code int // 0 until WriteHeader; success paths never call it
}

func (w *benchWriter) Header() http.Header { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
func (w *benchWriter) WriteHeader(code int) { w.code = code }

// predictHarness is the reusable fixture: one request object, one
// resettable body, one writer. run replays the request once.
type predictHarness struct {
	h    http.Handler
	req  *http.Request
	body *benchBody
	w    *benchWriter
	data []byte
}

func newPredictHarness(h http.Handler, payload []byte, hdr http.Header) *predictHarness {
	ph := &predictHarness{
		h:    h,
		req:  httptest.NewRequest(http.MethodPost, "/v1/predict", nil),
		body: &benchBody{},
		w:    &benchWriter{h: make(http.Header, 4), buf: make([]byte, 0, 1024)},
		data: payload,
	}
	if hdr != nil {
		ph.req.Header = hdr
	}
	ph.req.Body = ph.body
	ph.req.ContentLength = int64(len(payload))
	return ph
}

func (ph *predictHarness) run(b *testing.B) {
	ph.body.r.Reset(ph.data)
	ph.w.buf = ph.w.buf[:0]
	ph.w.code = 0
	ph.h.ServeHTTP(ph.w, ph.req)
	if ph.w.code != 0 {
		b.Fatalf("status %d: %s", ph.w.code, ph.w.buf)
	}
}

// warm replays the request a few times outside the timer so pooled
// buffers reach their steady-state sizes.
func (ph *predictHarness) warm(b *testing.B) {
	for i := 0; i < 16; i++ {
		ph.run(b)
	}
}

func predictPayload(b *testing.B) []byte {
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
		b.Fatal(err)
	}
	return body.Bytes()
}

// BenchmarkServerPredict measures the steady-state in-process request
// path of POST /v1/predict under the default configuration —
// middleware, admission, raw-alias cache hit, write — the per-request
// overhead ratd adds in production once traffic repeats. Gated in
// BENCH_5.json on ns/op, allocs/op AND bytes/op; the design budget is
// under 2µs and at most 8 allocations per request.
func BenchmarkServerPredict(b *testing.B) {
	srv := New(Config{MaxBatch: 1})
	ph := newPredictHarness(srv.Handler(), predictPayload(b), nil)
	ph.warm(b) // first run fills the cache; the rest is the hot path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.run(b)
	}
}

// BenchmarkServerPredictUncached disables the cache so every iteration
// runs the whole pipeline: wire decode, kernel, wire encode. Response
// rendering is bit-for-bit encoding/json, so most of this time is
// irreducible shortest-form float formatting (strconv's ryu) — the
// binary benchmark below shows the same path without it.
func BenchmarkServerPredictUncached(b *testing.B) {
	srv := New(Config{MaxBatch: 1, CacheSize: -1})
	ph := newPredictHarness(srv.Handler(), predictPayload(b), nil)
	ph.warm(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.run(b)
	}
}

// BenchmarkServerPredictCachedHit is the steady-state hot path: the
// response bytes come straight out of the LRU. The whole request —
// middleware, admission, decode, cache lookup, write — performs zero
// allocations; BENCH_5.json pins allocs/op at exactly 0.
func BenchmarkServerPredictCachedHit(b *testing.B) {
	srv := New(Config{MaxBatch: 1})
	ph := newPredictHarness(srv.Handler(), predictPayload(b), nil)
	ph.warm(b) // first run fills the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.run(b)
	}
}

// BenchmarkServerPredictBinary is BenchmarkServerPredict with both
// sides of the exchange in the binary wire format (Content-Type and
// Accept: application/x-rat-bin): fixed-width frames instead of JSON
// text in either direction.
func BenchmarkServerPredictBinary(b *testing.B) {
	srv := New(Config{MaxBatch: 1, CacheSize: -1})
	payload := wire.AppendBinaryWorksheet(nil, paper.PDF1DParams())
	hdr := http.Header{
		"Content-Type": []string{wire.ContentTypeBinary},
		"Accept":       []string{wire.ContentTypeBinary},
	}
	ph := newPredictHarness(srv.Handler(), payload, hdr)
	ph.warm(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.run(b)
	}
}

// BenchmarkServerPredictTraced is BenchmarkServerPredictCachedHit with
// an X-Rat-Trace header on every request: the same cached-hit path
// plus trace parse, per-stage clocks and the header echo. The design
// budget is at most 2 allocs/op over the untraced benchmark; the
// request header itself is attached as a pre-built map so the
// comparison isolates the server side. Gated in BENCH_5.json.
func BenchmarkServerPredictTraced(b *testing.B) {
	srv := New(Config{MaxBatch: 1})
	hdr := obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())
	ph := newPredictHarness(srv.Handler(), predictPayload(b),
		http.Header{obs.TraceHeader: []string{hdr}})
	ph.warm(b)
	if got := ph.w.h.Get(obs.TraceHeader); got != hdr {
		b.Fatalf("trace header did not round-trip: got %q want %q", got, hdr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.run(b)
	}
}

// BenchmarkServerPredictTenanted is BenchmarkServerPredictCachedHit
// through the tenancy layer: key lookup, token-bucket charge,
// concurrency slot and per-tenant accounting on every request. The
// tenant member rides on the pooled statusWriter, so the budget over
// the untenanted path is the bucket/slot bookkeeping, not
// allocations. Gated in BENCH_5.json.
func BenchmarkServerPredictTenanted(b *testing.B) {
	reg, err := tenant.Parse(strings.NewReader(
		`{"tenants": [{"name": "bench", "key": "bk", "rate_per_sec": 1e12, "burst": 1e12}]}`))
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{MaxBatch: 1, Tenants: reg})
	ph := newPredictHarness(srv.Handler(), predictPayload(b),
		http.Header{"Authorization": []string{"Bearer bk"}})
	ph.warm(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.run(b)
	}
}
