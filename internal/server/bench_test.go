package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/tenant"
	"github.com/chrec/rat/internal/worksheet"
)

// BenchmarkServerPredict measures the full in-process request path of
// POST /v1/predict in its steady state — middleware, admission,
// decode, cache hit, write — the per-request overhead ratd adds on
// top of the prediction kernel. Gated in BENCH_4.json: allocation
// counts are deterministic, so any allocs/op increase fails CI.
func BenchmarkServerPredict(b *testing.B) {
	srv := New(Config{MaxBatch: 1}) // direct path; the batcher is benchmarked by its own tests
	h := srv.Handler()
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()

	// Prime the cache so every measured iteration is the hot path.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload)))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServerPredictTraced is BenchmarkServerPredict with an
// X-Rat-Trace header on every request: the same cached-hit path plus
// trace parse, context injection and header echo. The design budget is
// at most 2 allocs/op over the untraced benchmark (the context node
// and the echoed header value); the request header itself is attached
// as a pre-built map so the comparison isolates the server side.
// Gated in BENCH_4.json like the untraced path.
func BenchmarkServerPredictTraced(b *testing.B) {
	srv := New(Config{MaxBatch: 1})
	h := srv.Handler()
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload)))
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	hdr := obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())
	traceHeader := http.Header{obs.TraceHeader: []string{hdr}}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload))
		req.Header = traceHeader
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
		if got := rec.Header().Get(obs.TraceHeader); got != hdr {
			b.Fatalf("trace header did not round-trip: got %q want %q", got, hdr)
		}
	}
}

// BenchmarkServerPredictTenanted is BenchmarkServerPredict through the
// tenancy layer: key lookup, token-bucket charge, concurrency slot and
// per-tenant accounting on every request. The tenant member rides on
// the statusWriter the server already allocates, so the budget over
// the untenanted path is the bucket/slot bookkeeping, not allocations.
// Gated in BENCH_4.json like the untenanted path.
func BenchmarkServerPredictTenanted(b *testing.B) {
	reg, err := tenant.Parse(strings.NewReader(
		`{"tenants": [{"name": "bench", "key": "bk", "rate_per_sec": 1e12, "burst": 1e12}]}`))
	if err != nil {
		b.Fatal(err)
	}
	srv := New(Config{MaxBatch: 1, Tenants: reg})
	h := srv.Handler()
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()
	authHeader := http.Header{"Authorization": []string{"Bearer bk"}}

	rec := httptest.NewRecorder()
	warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload))
	warm.Header = authHeader
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload))
		req.Header = authHeader
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
