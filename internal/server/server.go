// Package server implements ratd, the RAT prediction service: an
// HTTP/JSON daemon serving the throughput test (Eqs. 1-11), the
// multi-FPGA extension and bounded design-space explorations from the
// existing worksheet JSON format. The serving core is production
// shaped: a request-coalescing batcher over the zero-allocation
// core.PredictBatch kernel, an LRU response cache keyed by the
// canonical worksheet bytes, weighted-semaphore admission control with
// per-endpoint concurrency limits (saturation answers 429 +
// Retry-After), context-propagated deadlines, panic recovery,
// structured JSONL request logging through telemetry.EventSink, and
// graceful drain. See docs/SERVER.md for the wire contract and the
// operational runbook.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/tenant"
)

// Config tunes a Server. The zero value serves with the defaults
// documented per field.
type Config struct {
	// MaxBatch is the largest coalesced predict batch; values <= 1
	// disable coalescing. Default 16.
	MaxBatch int
	// Linger is how long an under-filled batch waits for company
	// before computing anyway. Default 2ms.
	Linger time.Duration

	// CacheSize is the LRU response-cache capacity in entries; 0
	// disables caching. Default 1024. Negative disables explicitly.
	CacheSize int

	// PredictLimit, BatchLimit and ExploreLimit bound concurrently
	// admitted requests per endpoint (batch requests weigh their
	// worksheet count). Defaults 64, 16, 2.
	PredictLimit int
	BatchLimit   int
	ExploreLimit int
	// TotalLimit bounds concurrently admitted weight across all three
	// endpoints — the shared pool the priority semaphore grants from
	// (interactive predict outranks bulk batch/explore). Default: the
	// sum of the per-endpoint limits.
	TotalLimit int
	// AdmissionWait bounds how long a request may queue for admission
	// before being answered 429. Default 10ms.
	AdmissionWait time.Duration

	// PredictTimeout and ExploreTimeout are the per-request deadlines
	// propagated through context. Defaults 10s and 2m.
	PredictTimeout time.Duration
	ExploreTimeout time.Duration

	// MaxExploreCandidates caps the candidate span a single
	// /v1/explore may ask for (a sharded request is charged for its
	// index range, not the whole grid). Default 4Mi candidates.
	MaxExploreCandidates uint64
	// MaxDistributedCandidates caps the candidate span a
	// /v1/explore/distributed request may fan out across its fleet.
	// Fleet-scale, so far above the per-node ceiling; each shard
	// re-passes the per-node ceiling on its worker. Default 1Gi.
	MaxDistributedCandidates uint64
	// ExploreWorkers is the worker-pool size per exploration; 0 uses
	// one worker per CPU.
	ExploreWorkers int
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64

	// Tenants, when non-nil, turns on multi-tenant admission: every
	// API request must carry a configured key (Authorization: Bearer
	// or X-Rat-Key), is charged against its tenant's token bucket and
	// concurrency cap, and is accounted in per-tenant RED metrics. Nil
	// serves untenanted with a request path byte-identical to the
	// pre-tenancy server. See docs/TENANCY.md.
	Tenants *tenant.Registry
	// ExploreTokenCost is the token-bucket charge for one /v1/explore
	// request (predict costs 1, batch costs 1 per worksheet). Default
	// 16.
	ExploreTokenCost float64

	// BrownoutWindow is the observation window of the brownout
	// controller; each window ends with at most one level transition.
	// Default 1s.
	BrownoutWindow time.Duration
	// BrownoutShedFraction is the overload-shed fraction within one
	// window at which the brownout level steps up. Default 0.05.
	BrownoutShedFraction float64
	// BrownoutQuiet is how long the server must go without an
	// overload shed before the brownout level steps back down.
	// Default 5s.
	BrownoutQuiet time.Duration

	// Metrics receives the serving metrics; nil allocates a private
	// registry (exposed at /metrics either way).
	Metrics *telemetry.Registry
	// AccessLog, when non-nil, receives one structured event per
	// request (kind "http", wall-clock picosecond span, detail
	// "METHOD /path STATUS").
	AccessLog telemetry.EventSink
	// AccessLogger, when non-nil, receives one structured record per
	// request with method, path, status, bytes, duration, trace_id,
	// span_id and the per-stage latency breakdown. This is the access
	// log ratd writes as JSONL; it supersedes AccessLog, which remains
	// for event-pipeline consumers.
	AccessLogger *slog.Logger
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.PredictLimit <= 0 {
		c.PredictLimit = 64
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = 16
	}
	if c.ExploreLimit <= 0 {
		c.ExploreLimit = 2
	}
	if c.AdmissionWait == 0 {
		c.AdmissionWait = 10 * time.Millisecond
	}
	if c.PredictTimeout <= 0 {
		c.PredictTimeout = 10 * time.Second
	}
	if c.ExploreTimeout <= 0 {
		c.ExploreTimeout = 2 * time.Minute
	}
	if c.MaxExploreCandidates == 0 {
		c.MaxExploreCandidates = 4 << 20
	}
	if c.MaxDistributedCandidates == 0 {
		c.MaxDistributedCandidates = 1 << 30
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ExploreTokenCost <= 0 {
		c.ExploreTokenCost = 16
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	return c
}

// Server is the ratd serving core. Construct with New, expose with
// Handler or Serve, stop with Shutdown.
type Server struct {
	cfg Config
	reg *telemetry.Registry

	batcher *batcher
	cache   *responseCache

	admPredict *admission
	admBatch   *admission
	admExplore *admission

	tenancy  *tenancy
	brownout *brownout

	handler  http.Handler
	hs       *http.Server
	draining atomic.Bool
	seq      atomic.Int64
	start    time.Time

	panics   *telemetry.Counter
	requests *telemetry.Counter
	red      *redMetrics
	stages   obs.StageSet
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	pool := newPrioritySem(int64(cfg.TotalLimit), [numClasses]int64{
		clsPredict: int64(cfg.PredictLimit),
		clsBatch:   int64(cfg.BatchLimit),
		clsExplore: int64(cfg.ExploreLimit),
	})
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		batcher:    newBatcher(reg, cfg.MaxBatch, cfg.Linger),
		cache:      newResponseCache(reg, cfg.CacheSize),
		admPredict: newAdmission(reg, pool, clsPredict, "predict", cfg.AdmissionWait),
		admBatch:   newAdmission(reg, pool, clsBatch, "batch", cfg.AdmissionWait),
		admExplore: newAdmission(reg, pool, clsExplore, "explore", cfg.AdmissionWait),
		panics:     reg.Counter("server.panics"),
		requests:   reg.Counter("server.requests"),
		red:        newRedMetrics(reg),
		start:      time.Now(),
	}
	if cfg.Tenants != nil {
		s.tenancy = newTenancy(reg, cfg.Tenants, cfg.ExploreTokenCost)
	}
	// The brownout controller degrades bulk features under sustained
	// overload: its onChange hook widens the batcher linger (levels 2+
	// coalesce harder); the explore ceiling and cache-fill effects are
	// read per request from the level.
	s.brownout = newBrownout(reg, cfg.BrownoutWindow, cfg.BrownoutShedFraction, cfg.BrownoutQuiet,
		func(level int32) {
			if level < 0 {
				level = 0
			}
			if level > maxBrownoutLevel {
				level = maxBrownoutLevel
			}
			s.batcher.lingerScale.Store(brownoutLingerScale[level])
		})
	mux := http.NewServeMux()
	// handlePredict is registered bare: the interactive path finishes in
	// microseconds, so it manages its own deadline (a context is built
	// only when a request actually coalesces into the batcher) instead
	// of paying WithTimeout's allocations on every call.
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/predict/batch", s.withTimeout(cfg.PredictTimeout, s.handleBatch))
	mux.HandleFunc("POST /v1/explore", s.withTimeout(cfg.ExploreTimeout, s.handleExplore))
	mux.HandleFunc("POST /v1/explore/distributed", s.withTimeout(cfg.ExploreTimeout, s.handleExploreDistributed))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.handler = s.middleware(mux)
	// Built here, not in Serve: Shutdown reads s.hs from another
	// goroutine, so the assignment must happen-before both.
	s.hs = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the fully wrapped HTTP handler, for tests and for
// embedding the service into an existing mux.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's telemetry registry.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean drain, mirroring net/http.
func (s *Server) Serve(l net.Listener) error {
	return s.hs.Serve(l)
}

// Shutdown drains the server: the readiness probe flips to 503, the
// listener stops accepting, and in-flight requests run to completion
// (or to their own deadlines) bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the status code and byte count for logging,
// and owns the request's Trace. Embedding the Trace by value here puts
// the whole per-request observability record inside one pooled
// allocation, so tracing adds no allocation of its own. Writers are
// recycled through swPool — nothing may retain one past the
// middleware's deferred epilogue.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	tr     obs.Trace

	// member and tstat are set when the tenancy layer admits the
	// request; the middleware's deferred block releases the slot and
	// records per-tenant latency through them (on the panic path too).
	member *tenant.Member
	tstat  *tenantStat
	// quotaShed marks a 429 as a per-tenant quota or concurrency
	// refusal. The brownout controller ignores those: one hostile
	// tenant being limited is isolation working, not server overload.
	quotaShed bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes (the JSONL explore path).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// swPool recycles statusWriters; the reset in middleware clears every
// field, so a pooled writer carries nothing across requests.
var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// middleware wraps the mux with panic recovery, request metrics, trace
// ingress/echo and structured access logging.
func (s *Server) middleware(next http.Handler) http.Handler {
	latency := s.reg.Timer("server.latency")
	logging := s.cfg.AccessLog != nil || s.cfg.AccessLogger != nil
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := s.seq.Add(1)
		s.requests.Inc()
		ep := classifyPath(r.URL.Path)
		s.red.inflight.Add(1)
		sw := swPool.Get().(*statusWriter)
		*sw = statusWriter{ResponseWriter: w}
		// Trace ingress: accept a well-formed X-Rat-Trace and echo the
		// incoming value back verbatim (the caller's round-trip proof).
		// Without one, mint an identity only when a log will carry it —
		// the untraced hot path stays allocation-free.
		if hdr := r.Header.Get(obs.TraceHeader); hdr != "" {
			if id, span, ok := obs.ParseTraceHeader(hdr); ok {
				sw.tr.ID, sw.tr.Span = id, span
				w.Header().Set(obs.TraceHeader, hdr)
			}
		}
		if !sw.tr.Valid() && logging {
			sw.tr.ID, sw.tr.Span = obs.NewTraceID(), obs.NewSpanID()
			w.Header().Set(obs.TraceHeader, sw.tr.Header())
		}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				// The handler died mid-request; if nothing was written
				// yet the client still gets a well-formed 500.
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error: %v", rec))
				}
				debug.PrintStack()
			}
			elapsed := time.Since(start)
			latency.Observe(elapsed)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.red.observe(ep, status, elapsed)
			s.red.inflight.Add(-1)
			if sw.member != nil {
				s.tenancy.finish(sw, elapsed)
			}
			if ep < epMeta {
				// Feed the brownout controller: overload sheds are
				// capacity 429s, not tenant-quota ones.
				s.brownout.observe(start.Add(elapsed),
					status == http.StatusTooManyRequests && !sw.quotaShed)
			}
			if s.cfg.AccessLog != nil {
				s.cfg.AccessLog.Emit(telemetry.Event{
					Kind:    "http",
					Iter:    int(seq),
					StartPs: start.UnixNano() * 1000,
					EndPs:   start.Add(elapsed).UnixNano() * 1000,
					Bytes:   sw.bytes,
					Detail:  fmt.Sprintf("%s %s %d", r.Method, r.URL.Path, sw.status),
				})
			}
			if s.cfg.AccessLogger != nil {
				s.cfg.AccessLogger.LogAttrs(context.Background(), slog.LevelInfo, "request",
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Int("status", status),
					slog.Int64("bytes", sw.bytes),
					slog.Int64("dur_us", elapsed.Microseconds()),
					slog.String("trace_id", sw.tr.ID.String()),
					slog.String("span_id", sw.tr.Span.String()),
					slog.String("stages_ns", sw.tr.StagesValue()),
				)
			}
			swPool.Put(sw)
		}()
		if s.tenancy != nil && ep < epMeta {
			if !s.tenancy.admit(sw, r, ep, start) {
				return // response written: 401 or 429 + Retry-After
			}
		}
		next.ServeHTTP(sw, r)
	})
}

// withTimeout propagates a server-enforced deadline through the
// request context. Handlers reach the request's Trace through the
// statusWriter (see traceOf), so no context injection is needed.
func (s *Server) withTimeout(d time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// writeError answers with the JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, merr := jsonMarshal(api.Error{Error: err.Error()})
	if merr != nil {
		body = []byte(`{"error":"internal error"}`)
	}
	w.Write(body)
	w.Write([]byte("\n"))
}

// writeTooBusy answers 429 with a Retry-After hint.
func writeTooBusy(w http.ResponseWriter, endpoint string) {
	w.Header().Set("Retry-After", strconv.Itoa(1))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("%s is at its concurrency limit; retry after backoff", endpoint))
}
