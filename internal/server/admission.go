package server

import (
	"container/list"
	"context"
	"sync"
	"time"

	"github.com/chrec/rat/internal/telemetry"
)

// admClass indexes the admission classes sharing the server's
// capacity pool. Interactive predict outranks the bulk classes;
// within a class, waiters are served FIFO.
type admClass int

const (
	clsPredict admClass = iota // interactive: priority 0
	clsBatch                   // bulk: priority 1
	clsExplore                 // bulk: priority 1
	numClasses
)

// classPriority orders classes for grants: lower wins. Predict is the
// interactive tier; batch and explore are peers in the bulk tier.
var classPriority = [numClasses]int{0, 1, 1}

// grantOrder is the class scan order on release: strictly by
// priority, ties broken by class index (deterministic).
var grantOrder = [numClasses]admClass{clsPredict, clsBatch, clsExplore}

type waiter struct {
	n     int64
	ready chan struct{} // closed when the weight has been granted
}

// classState is one class's slice of the shared pool: its concurrency
// limit, current holdings, and FIFO waiter queue.
type classState struct {
	limit   int64
	cur     int64
	waiters list.List // of *waiter
}

// prioritySem is the weighted, class-prioritized semaphore behind
// admission control. It replaces the per-endpoint FIFO semaphores: one
// shared total capacity, a per-class limit (the old per-endpoint
// limit), and strict-priority grants — capacity freed while an
// interactive waiter is queued on the total is never handed to a bulk
// waiter. A bulk waiter can still be granted while an interactive
// waiter is blocked purely on its own class limit, so priority never
// idles the pool. Within a class, waiters are FIFO: a heavy batch
// cannot be starved by a stream of light ones.
type prioritySem struct {
	mu    sync.Mutex
	total int64
	cur   int64
	cls   [numClasses]classState
}

// newPrioritySem builds the shared pool. total <= 0 defaults to the
// sum of the class limits (each endpoint can then always reach its
// own limit when the others are idle).
func newPrioritySem(total int64, limits [numClasses]int64) *prioritySem {
	sum := int64(0)
	for _, l := range limits {
		sum += l
	}
	if total <= 0 {
		total = sum
	}
	s := &prioritySem{total: total}
	for c := range s.cls {
		s.cls[c].limit = limits[c]
	}
	return s
}

// fitsLocked reports whether weight n can be granted to class c right
// now: class limit, total capacity, FIFO within the class, and no
// higher-priority class starving behind it.
func (s *prioritySem) fitsLocked(c admClass, n int64) bool {
	cs := &s.cls[c]
	if cs.waiters.Len() > 0 {
		return false // FIFO within the class
	}
	if cs.cur+n > cs.limit || s.cur+n > s.total {
		return false
	}
	for d := admClass(0); d < numClasses; d++ {
		if classPriority[d] >= classPriority[c] {
			continue
		}
		if front := s.cls[d].waiters.Front(); front != nil {
			w := front.Value.(*waiter)
			// A higher-priority waiter held back only by the shared total
			// has a reservation on freed capacity: never barge past it.
			// One blocked purely on its own class limit holds nothing.
			if s.cls[d].cur+w.n <= s.cls[d].limit && s.cur+n+w.n > s.total {
				return false
			}
		}
	}
	return true
}

// tryAcquire takes n units for class c without blocking.
func (s *prioritySem) tryAcquire(c admClass, n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fitsLocked(c, n) {
		s.cls[c].cur += n
		s.cur += n
		return true
	}
	return false
}

// acquire takes n units for class c, blocking until granted or ctx is
// done.
func (s *prioritySem) acquire(ctx context.Context, c admClass, n int64) error {
	s.mu.Lock()
	if s.fitsLocked(c, n) {
		s.cls[c].cur += n
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.cls[c].waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: keep the
			// units and report success; the caller will release them.
			s.mu.Unlock()
			return nil
		default:
		}
		s.cls[c].waiters.Remove(elem)
		// Removing a waiter can unblock the ones behind it — in this
		// class and in lower-priority ones.
		s.notifyLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns n units held by class c and grants as many queued
// waiters as now fit, in priority order.
func (s *prioritySem) release(c admClass, n int64) {
	s.mu.Lock()
	s.cls[c].cur -= n
	s.cur -= n
	if s.cls[c].cur < 0 || s.cur < 0 {
		s.mu.Unlock()
		//rat:allow-panic a double release corrupts admission accounting for every later request
		panic("server: admission released more than held")
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// notifyLocked grants queued waiters in strict priority order, FIFO
// within each class. Once a waiter is blocked on the shared total, no
// lower-priority waiter may be granted past it (the reservation that
// makes priority real); a waiter blocked only on its own class limit
// does not hold lower classes back.
func (s *prioritySem) notifyLocked() {
	totalBlocked := false
	for _, c := range grantOrder {
		cs := &s.cls[c]
		for {
			front := cs.waiters.Front()
			if front == nil {
				break
			}
			w := front.Value.(*waiter)
			if totalBlocked || s.cur+w.n > s.total {
				break
			}
			if cs.cur+w.n > cs.limit {
				break // FIFO within the class: do not reorder past the head
			}
			cs.cur += w.n
			s.cur += w.n
			cs.waiters.Remove(front)
			close(w.ready)
		}
		if front := cs.waiters.Front(); front != nil {
			if w := front.Value.(*waiter).n; s.cur+w > s.total {
				totalBlocked = true
			}
		}
	}
}

// admission is one endpoint's view of the shared pool: its class, a
// bounded queue wait, and telemetry (in-flight gauge, high-water-mark
// gauge, admitted/rejected counters). Requests that cannot be admitted
// within the wait bound are rejected — the handler turns that into
// 429 + Retry-After.
type admission struct {
	sem   *prioritySem
	class admClass
	limit int64
	wait  time.Duration

	mu   sync.Mutex
	cur  int64
	peak int64

	inflight *telemetry.Gauge
	peakG    *telemetry.Gauge
	admitted *telemetry.Counter
	rejected *telemetry.Counter
}

// newAdmission builds the named endpoint's view of the shared pool
// with the given maximum queue wait.
func newAdmission(reg *telemetry.Registry, sem *prioritySem, class admClass, endpoint string, wait time.Duration) *admission {
	return &admission{
		sem:      sem,
		class:    class,
		limit:    sem.cls[class].limit,
		wait:     wait,
		inflight: reg.Gauge("server.inflight." + endpoint),
		peakG:    reg.Gauge("server.inflight_peak." + endpoint),
		admitted: reg.Counter("server.admitted." + endpoint),
		rejected: reg.Counter("server.rejected." + endpoint),
	}
}

// admit asks for weight units of the endpoint's capacity, queueing for
// at most the controller's wait bound (never beyond the request's own
// deadline — a request that would be granted after its deadline is
// abandoned in the queue, not executed late). On success it returns
// the granted weight, which the caller must hand back to release
// (returning the weight instead of a closure keeps the grant off the
// heap — `defer a.release(granted)` is allocation-free); on saturation
// it returns ok == false and the caller answers 429.
func (a *admission) admit(ctx context.Context, weight int64) (granted int64, ok bool) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.limit {
		weight = a.limit // one huge request may use the whole endpoint, not more
	}
	if !a.sem.tryAcquire(a.class, weight) {
		if a.wait <= 0 {
			a.rejected.Inc()
			return 0, false
		}
		waitCtx, cancel := context.WithTimeout(ctx, a.wait)
		err := a.sem.acquire(waitCtx, a.class, weight)
		cancel()
		if err != nil {
			a.rejected.Inc()
			return 0, false
		}
	}
	a.admitted.Inc()
	a.mu.Lock()
	a.cur += weight
	if a.cur > a.peak {
		a.peak = a.cur
		a.peakG.Set(float64(a.peak))
	}
	a.inflight.Set(float64(a.cur))
	a.mu.Unlock()
	return weight, true
}

// release returns a grant obtained from admit.
func (a *admission) release(weight int64) {
	a.mu.Lock()
	a.cur -= weight
	a.inflight.Set(float64(a.cur))
	a.mu.Unlock()
	a.sem.release(a.class, weight)
}
