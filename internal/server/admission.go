package server

import (
	"container/list"
	"context"
	"sync"
	"time"

	"github.com/chrec/rat/internal/telemetry"
)

// semaphore is a weighted counting semaphore in the style of
// golang.org/x/sync/semaphore (reimplemented here: the repository
// takes no external dependencies). Waiters are served FIFO so a heavy
// acquisition cannot be starved by a stream of light ones.
type semaphore struct {
	mu      sync.Mutex
	size    int64
	cur     int64
	waiters list.List // of *waiter
}

type waiter struct {
	n     int64
	ready chan struct{} // closed when the weight has been granted
}

func newSemaphore(n int64) *semaphore { return &semaphore{size: n} }

// tryAcquire takes n units without blocking, reporting success. It
// fails when waiters are queued, preserving FIFO fairness.
func (s *semaphore) tryAcquire(n int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur+n <= s.size && s.waiters.Len() == 0 {
		s.cur += n
		return true
	}
	return false
}

// acquire takes n units, blocking until they are available or ctx is
// done. A weight above the semaphore size can never succeed and fails
// immediately with context.DeadlineExceeded semantics avoided — the
// caller clamps weights, so this is defensive.
func (s *semaphore) acquire(ctx context.Context, n int64) error {
	s.mu.Lock()
	if s.cur+n <= s.size && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: keep the
			// units and report success; the caller will release them.
			s.mu.Unlock()
			return nil
		default:
		}
		s.waiters.Remove(elem)
		// Removing a waiter can unblock the ones behind it.
		s.notifyLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// release returns n units and wakes as many FIFO waiters as now fit.
func (s *semaphore) release(n int64) {
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.mu.Unlock()
		//rat:allow-panic a double release corrupts admission accounting for every later request
		panic("server: semaphore released more than held")
	}
	s.notifyLocked()
	s.mu.Unlock()
}

func (s *semaphore) notifyLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.cur+w.n > s.size {
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}

// admission is the per-endpoint admission controller: a weighted
// semaphore bounding in-flight work, a bounded queue wait, and
// telemetry (in-flight gauge, high-water-mark gauge, admitted/rejected
// counters). Requests that cannot be admitted within the wait bound
// are rejected — the handler turns that into 429 + Retry-After.
type admission struct {
	sem   *semaphore
	limit int64
	wait  time.Duration

	mu   sync.Mutex
	cur  int64
	peak int64

	inflight *telemetry.Gauge
	peakG    *telemetry.Gauge
	admitted *telemetry.Counter
	rejected *telemetry.Counter
}

// newAdmission builds a controller for the named endpoint with the
// given concurrency limit and maximum queue wait.
func newAdmission(reg *telemetry.Registry, endpoint string, limit int64, wait time.Duration) *admission {
	return &admission{
		sem:      newSemaphore(limit),
		limit:    limit,
		wait:     wait,
		inflight: reg.Gauge("server.inflight." + endpoint),
		peakG:    reg.Gauge("server.inflight_peak." + endpoint),
		admitted: reg.Counter("server.admitted." + endpoint),
		rejected: reg.Counter("server.rejected." + endpoint),
	}
}

// admit asks for weight units of the endpoint's capacity, queueing for
// at most the controller's wait bound (never beyond the request's own
// deadline). On success it returns a release function; on saturation
// it returns ok == false and the caller answers 429.
func (a *admission) admit(ctx context.Context, weight int64) (release func(), ok bool) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.limit {
		weight = a.limit // one huge request may use the whole endpoint, not more
	}
	if !a.sem.tryAcquire(weight) {
		if a.wait <= 0 {
			a.rejected.Inc()
			return nil, false
		}
		waitCtx, cancel := context.WithTimeout(ctx, a.wait)
		err := a.sem.acquire(waitCtx, weight)
		cancel()
		if err != nil {
			a.rejected.Inc()
			return nil, false
		}
	}
	a.admitted.Inc()
	a.mu.Lock()
	a.cur += weight
	if a.cur > a.peak {
		a.peak = a.cur
		a.peakG.Set(float64(a.peak))
	}
	a.inflight.Set(float64(a.cur))
	a.mu.Unlock()
	return func() {
		a.mu.Lock()
		a.cur -= weight
		a.inflight.Set(float64(a.cur))
		a.mu.Unlock()
		a.sem.release(weight)
	}, true
}
