package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// distExploreRequest is the 144-candidate fixture grid in its
// distributed wire form.
func distExploreRequest(workers []string) api.DistributedExploreRequest {
	return api.DistributedExploreRequest{
		Explore: api.ExploreRequest{
			Worksheet:       worksheet.DocFromParams(paper.PDF1DParams()),
			ClocksMHz:       []float64{75, 100, 150},
			ThroughputProcs: []float64{10, 20, 40},
			Alphas:          []float64{0.16, 0.37},
			BlockSizes:      []int64{512, 2048},
			Devices:         []int{1, 4},
			Topology:        "independent",
			Objective:       "max-speedup",
			TopK:            10,
			Frontier:        true,
		},
		Workers:   workers,
		ShardSize: 8, // more shards than admission slots: real queueing
	}
}

func postDistributed(t *testing.T, coordURL string, req api.DistributedExploreRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coordURL+"/v1/explore/distributed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestDistributedExploreMatchesSingleNode: the coordinator endpoint,
// sharding across a three-ratd fleet, answers with exactly the
// candidates a single node returns for the same request — and repeated
// runs are byte-identical, shard interleaving notwithstanding.
func TestDistributedExploreMatchesSingleNode(t *testing.T) {
	var fleet []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		ts := httptest.NewServer(New(Config{}).Handler())
		defer ts.Close()
		fleet = append(fleet, ts)
		urls = append(urls, ts.URL)
	}
	coord := httptest.NewServer(New(Config{}).Handler())
	defer coord.Close()

	dreq := distExploreRequest(urls)

	// The single-node reference: the same explore posted straight to
	// one worker.
	ebody, err := json.Marshal(dreq.Explore)
	if err != nil {
		t.Fatal(err)
	}
	eresp, err := http.Post(fleet[0].URL+"/v1/explore", "application/json", bytes.NewReader(ebody))
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var single api.ExploreResponse
	if err := json.NewDecoder(eresp.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}

	resp, body := postDistributed(t, coord.URL, dreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed explore: HTTP %d: %s", resp.StatusCode, body)
	}
	var dist api.DistributedExploreResponse
	if err := json.Unmarshal(body, &dist); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Top, single.Top) {
		t.Errorf("distributed top diverges from single-node:\n got  %+v\n want %+v", dist.Top, single.Top)
	}
	if !reflect.DeepEqual(dist.Frontier, single.Frontier) {
		t.Errorf("distributed frontier diverges from single-node:\n got  %+v\n want %+v", dist.Frontier, single.Frontier)
	}
	if dist.Evaluated != single.Evaluated || dist.Feasible != single.Feasible {
		t.Errorf("distributed counts (%d, %d), want (%d, %d)",
			dist.Evaluated, dist.Feasible, single.Evaluated, single.Feasible)
	}
	if dist.Cluster.Workers != 3 || dist.Cluster.Shards != 18 {
		t.Errorf("cluster stats %+v, want 3 workers, 18 shards", dist.Cluster)
	}

	// Determinism on the wire: a second identical request must be
	// byte-identical except the run-shaped telemetry fields, which a
	// normalizing re-marshal strips.
	resp2, body2 := postDistributed(t, coord.URL, dreq)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second distributed explore: HTTP %d: %s", resp2.StatusCode, body2)
	}
	var dist2 api.DistributedExploreResponse
	if err := json.Unmarshal(body2, &dist2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist2.Top, dist.Top) || !reflect.DeepEqual(dist2.Frontier, dist.Frontier) {
		t.Error("two identical distributed requests returned different candidates")
	}
}

// TestDistributedExploreSelfCoordination: the coordinator may list
// itself as a worker and still complete — its explore admission keeps
// a slot free for its own shards.
func TestDistributedExploreSelfCoordination(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := postDistributed(t, ts.URL, distExploreRequest([]string{ts.URL}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-coordinated explore: HTTP %d: %s", resp.StatusCode, body)
	}
	var dist api.DistributedExploreResponse
	if err := json.Unmarshal(body, &dist); err != nil {
		t.Fatal(err)
	}
	if dist.Evaluated != 144 || len(dist.Top) == 0 {
		t.Errorf("self-coordinated run evaluated %d with %d top candidates", dist.Evaluated, len(dist.Top))
	}
}

// TestDistributedExploreRejections: malformed requests get 4xx before
// any worker is touched; an unreachable fleet gets 502.
func TestDistributedExploreRejections(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxDistributedCandidates: 100}).Handler())
	defer ts.Close()

	t.Run("no workers", func(t *testing.T) {
		resp, body := postDistributed(t, ts.URL, distExploreRequest(nil))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d: %s, want 400", resp.StatusCode, body)
		}
	})
	t.Run("bad worker URL", func(t *testing.T) {
		dreq := distExploreRequest([]string{"worker-one:8080"})
		dreq.Explore.IndexLo, dreq.Explore.IndexHi = 0, 16 // under the ceiling, so URL validation is what rejects
		resp, body := postDistributed(t, ts.URL, dreq)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d: %s, want 400", resp.StatusCode, body)
		}
	})
	t.Run("over the distributed ceiling", func(t *testing.T) {
		resp, body := postDistributed(t, ts.URL, distExploreRequest([]string{ts.URL}))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("HTTP %d: %s, want 413 over a 100-candidate ceiling", resp.StatusCode, body)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/explore/distributed", "application/json",
			strings.NewReader(`{"workers": ["http://127.0.0.1:1"], "surprise": 1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400 on an unknown field", resp.StatusCode)
		}
	})
	t.Run("unreachable fleet", func(t *testing.T) {
		small := distExploreRequest([]string{"http://127.0.0.1:1"})
		small.Explore.IndexLo, small.Explore.IndexHi = 0, 16
		small.ShardTimeoutSeconds = 0.2
		resp, body := postDistributed(t, ts.URL, small)
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("HTTP %d: %s, want 502 for an unreachable fleet", resp.StatusCode, body)
		}
	})
}

// TestDistributedExploreForwardsAPIKey: on a tenanted fleet the
// coordinator forwards the caller's key, so worker shards are charged
// to the requesting tenant.
func TestDistributedExploreForwardsAPIKey(t *testing.T) {
	var mu sync.Mutex
	var saw []string
	worker := httptest.NewServer(New(Config{}).Handler())
	defer worker.Close()
	// A recording proxy in front of the worker captures what the
	// coordinator's shard requests carry.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		saw = append(saw, r.Header.Get("Authorization"))
		mu.Unlock()
		r2, err := http.NewRequestWithContext(r.Context(), r.Method, worker.URL+r.URL.String(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		r2.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(r2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		w.Write(buf.Bytes())
	}))
	defer proxy.Close()
	coord := httptest.NewServer(New(Config{}).Handler())
	defer coord.Close()

	dreq := distExploreRequest([]string{proxy.URL})
	body, err := json.Marshal(dreq)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, coord.URL+"/v1/explore/distributed", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer tenant-key-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(saw) == 0 {
		t.Fatal("no shard requests reached the worker")
	}
	for _, auth := range saw {
		if auth != "Bearer tenant-key-1" {
			t.Fatalf("shard request carried Authorization %q, want the caller's key", auth)
		}
	}
}
