package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/worksheet"
)

// startServer runs Serve on an ephemeral listener and returns the base
// URL plus a channel carrying Serve's return value.
func startServer(t *testing.T, s *Server) (string, chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	return "http://" + l.Addr().String(), served
}

// exploreBody builds a /v1/explore request whose grid is the product
// of the axis lengths given — a compact body even for million-point
// grids (bufferings default to both, doubling the product).
func exploreBody(t *testing.T, clocks, tprocs, alphas int) []byte {
	t.Helper()
	req := api.ExploreRequest{
		Worksheet: worksheet.DocFromParams(paper.PDF1DParams()),
		TopK:      5,
	}
	for i := 1; i <= clocks; i++ {
		req.ClocksMHz = append(req.ClocksMHz, float64(i))
	}
	for i := 1; i <= tprocs; i++ {
		req.ThroughputProcs = append(req.ThroughputProcs, float64(i))
	}
	for i := 1; i <= alphas; i++ {
		req.Alphas = append(req.Alphas, float64(i)/float64(alphas+1))
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestGracefulShutdownCompletesInFlight pins the drain contract: an
// exploration admitted before Shutdown runs to completion and is
// answered 200, Serve returns http.ErrServerClosed, and the listener
// stops accepting new connections.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Metrics: reg, ExploreWorkers: 1})
	url, served := startServer(t, srv)

	// Launch an exploration big enough to still be running when the
	// drain begins (100x50x50x2 = 500k candidates on one worker).
	type result struct {
		status int
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/explore", "application/json",
			bytes.NewReader(exploreBody(t, 100, 50, 50)))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out api.ExploreResponse
		if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil && resp.StatusCode == http.StatusOK {
			got <- result{err: derr}
			return
		}
		got <- result{status: resp.StatusCode}
	}()

	// Wait until the request is actually admitted before draining.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Gauges["server.inflight.explore"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("explore request never showed up in flight")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() false after Shutdown")
	}

	select {
	case err := <-served:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight explore failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Errorf("in-flight explore answered %d during drain, want 200", r.status)
	}

	// The listener is gone: new connections are refused.
	_, err := net.DialTimeout("tcp", url[len("http://"):], time.Second)
	if err == nil {
		t.Error("listener still accepting connections after drain")
	} else if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Logf("post-drain dial failed with %v (any refusal is acceptable)", err)
	}
}

// TestShutdownDeadlineCancelsExplore covers the other drain outcome:
// when the exploration's own deadline expires mid-drain, the client
// gets 504 rather than a hung connection, and Shutdown still returns
// once the handler unwinds.
func TestShutdownDeadlineCancelsExplore(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{
		Metrics:        reg,
		ExploreWorkers: 1,
		ExploreTimeout: 100 * time.Millisecond,
	})
	url, served := startServer(t, srv)

	got := make(chan int, 1)
	go func() {
		// 100x100x100x2 = 2M candidates: one worker cannot finish in
		// the 100ms request deadline.
		resp, err := http.Post(url+"/v1/explore", "application/json",
			bytes.NewReader(exploreBody(t, 100, 100, 100)))
		if err != nil {
			got <- -1
			return
		}
		resp.Body.Close()
		got <- resp.StatusCode
	}()

	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Gauges["server.inflight.explore"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("explore request never showed up in flight")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case status := <-got:
		if status != http.StatusGatewayTimeout {
			t.Errorf("deadline-cancelled explore answered %d, want 504", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled explore never answered")
	}
	select {
	case err := <-served:
		if !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestShutdownBeforeServe: Shutdown on a server that never served is a
// clean no-op (ratd hits this when startup fails).
func TestShutdownBeforeServe(t *testing.T) {
	srv := New(Config{})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Serve: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() false after Shutdown")
	}
}

// TestAccessLogEvents checks the structured request log: one event per
// request with the method/path/status detail line.
func TestAccessLogEvents(t *testing.T) {
	var sink memorySink
	srv := New(Config{AccessLog: &sink})
	url, served := startServer(t, srv)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	<-served

	events := sink.take()
	if len(events) != 1 {
		t.Fatalf("access log has %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != "http" || e.Detail != "GET /healthz 200" {
		t.Errorf("event = kind %q detail %q, want http / GET /healthz 200", e.Kind, e.Detail)
	}
	if e.EndPs < e.StartPs {
		t.Errorf("event span inverted: [%d, %d]", e.StartPs, e.EndPs)
	}
}

// memorySink collects emitted events for assertions.
type memorySink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (m *memorySink) Emit(e telemetry.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, e)
}

func (m *memorySink) take() []telemetry.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]telemetry.Event(nil), m.events...)
}
