package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/telemetry"
)

// endpointClass indexes the pre-created RED metric handles so the hot
// path never takes the registry lock or formats a metric name.
type endpointClass int

const (
	epPredict endpointClass = iota
	epBatch
	epExplore
	epMeta
	epOther
	numEndpoints
)

// classifyPath buckets a request path into its endpoint class.
func classifyPath(path string) endpointClass {
	switch path {
	case "/v1/predict":
		return epPredict
	case "/v1/predict/batch":
		return epBatch
	case "/v1/explore", "/v1/explore/distributed":
		return epExplore
	case "/healthz", "/readyz", "/metrics", "/v1/status":
		return epMeta
	}
	return epOther
}

// label returns the endpoint label value used in metric names.
func (e endpointClass) label() string {
	switch e {
	case epPredict:
		return "predict"
	case epBatch:
		return "batch"
	case epExplore:
		return "explore"
	case epMeta:
		return "meta"
	}
	return "other"
}

// redCodes are the status codes with pre-created counters; anything
// else falls back to a registry lookup (rare, off the hot path).
var redCodes = [...]int{200, 400, 404, 408, 413, 429, 500, 503, 504}

// requestSecondsBounds spans 100µs to 10s, the service's realistic
// request-latency range.
var requestSecondsBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// redMetrics is the per-endpoint RED instrumentation: request counts
// by status code, request duration histograms, and a service-wide
// in-flight gauge. Handles are created once at server construction.
type redMetrics struct {
	reg      *telemetry.Registry
	inflight *telemetry.Gauge
	seconds  [numEndpoints]*telemetry.Histogram
	codes    [numEndpoints]map[int]*telemetry.Counter
}

func newRedMetrics(reg *telemetry.Registry) *redMetrics {
	m := &redMetrics{reg: reg, inflight: reg.Gauge("rat_inflight")}
	for ep := endpointClass(0); ep < numEndpoints; ep++ {
		m.seconds[ep] = reg.Histogram(
			//rat:bounded-labels endpoint is a fixed enum label
			`rat_request_seconds{endpoint="`+ep.label()+`"}`, requestSecondsBounds)
		m.codes[ep] = make(map[int]*telemetry.Counter, len(redCodes))
		for _, code := range redCodes {
			m.codes[ep][code] = m.counter(ep, code)
		}
	}
	return m
}

func (m *redMetrics) counter(ep endpointClass, code int) *telemetry.Counter {
	//rat:bounded-labels code is an HTTP status, endpoint a fixed enum label
	return m.reg.Counter(fmt.Sprintf(`rat_requests_total{code="%d",endpoint="%s"}`,
		code, ep.label()))
}

// observe records one finished request. Pre-created handles make the
// common codes allocation-free.
func (m *redMetrics) observe(ep endpointClass, code int, elapsed time.Duration) {
	m.seconds[ep].Observe(elapsed.Seconds())
	c, ok := m.codes[ep][code]
	if !ok {
		c = m.counter(ep, code)
	}
	c.Inc()
}

// traceOf returns the request's Trace when it has an identity (an
// incoming X-Rat-Trace, or one minted for logging), else nil. Handlers
// gate ALL per-stage bookkeeping — the time.Now() reads included — on
// the returned pointer, so an untraced request pays zero clock reads
// between admission and encode.
func traceOf(w http.ResponseWriter) *obs.Trace {
	if sw, ok := w.(*statusWriter); ok && sw.tr.Valid() {
		return &sw.tr
	}
	return nil
}

// stageTr records one pipeline-stage latency into the server-wide
// histograms and the request's Trace. Callers only invoke it with a
// non-nil Trace (see traceOf), so rat_stage_seconds samples traced
// requests — every request when access logging is on, since logging
// mints an identity.
func (s *Server) stageTr(tr *obs.Trace, st obs.Stage, d time.Duration) {
	s.stages.Observe(st, d)
	tr.Add(st, d)
}

// setStagesHeaderTr answers the opt-in X-Rat-Stages request header
// with the per-stage breakdown accumulated so far. Callers invoke it
// after the last stage is recorded and before the body is written.
func setStagesHeaderTr(w http.ResponseWriter, r *http.Request, tr *obs.Trace) {
	if tr == nil || r.Header.Get(obs.StagesHeader) == "" {
		return
	}
	w.Header().Set(obs.StagesHeader, tr.StagesValue())
}

// handleStatus serves GET /v1/status: the live operational snapshot
// documented in docs/OBSERVABILITY.md.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start).Seconds()
	st := api.Status{
		UptimeSeconds: uptime,
		Requests:      s.requests.Value(),
		Draining:      s.draining.Load(),
		BrownoutLevel: int(s.brownout.Level()),
		Endpoints:     make(map[string]api.EndpointStatus, int(numEndpoints)),
		Stages:        make(map[string]api.StageStatus, int(obs.NumStages)),
	}
	if uptime > 0 {
		st.QPS = float64(st.Requests) / uptime
	}
	admissions := map[endpointClass]*admission{
		epPredict: s.admPredict, epBatch: s.admBatch, epExplore: s.admExplore,
	}
	for ep := endpointClass(0); ep < numEndpoints; ep++ {
		hs := s.red.seconds[ep].Stats()
		es := api.EndpointStatus{
			Requests: hs.Count,
			P50Ms:    hs.Quantile(0.50) * 1e3,
			P95Ms:    hs.Quantile(0.95) * 1e3,
			P99Ms:    hs.Quantile(0.99) * 1e3,
		}
		if adm := admissions[ep]; adm != nil {
			es.Inflight = adm.inflight.Value()
			es.Peak = adm.peakG.Value()
			es.Rejected = adm.rejected.Value()
		}
		st.Endpoints[ep.label()] = es
	}
	if s.cache != nil {
		hits, misses := s.cache.hits.Value(), s.cache.misses.Value()
		st.Cache = api.CacheStatus{
			Hits:    hits,
			Misses:  misses,
			Entries: s.cache.sizeG.Value(),
		}
		if hits+misses > 0 {
			st.Cache.HitRatio = float64(hits) / float64(hits+misses)
		}
	}
	bs := s.batcher.sizeHist.Stats()
	st.Batcher = api.BatcherStatus{
		Batches:   s.batcher.batches.Value(),
		Coalesced: s.batcher.coalesced.Value(),
	}
	if bs.Count > 0 {
		st.Batcher.MeanOccupancy = bs.Sum / float64(bs.Count)
	}
	if t := s.tenancy; t != nil {
		st.Tenants = make(map[string]api.TenantStatus, t.reg.Len())
		for _, name := range t.reg.Names() {
			member, ok := t.reg.ByName(name)
			if !ok {
				continue
			}
			stat := t.stat(name)
			st.Tenants[name] = api.TenantStatus{
				Requests:            stat.requests.Value(),
				RejectedQuota:       stat.rejectQuota.Value(),
				RejectedConcurrency: stat.rejectConc.Value(),
				Inflight:            member.Inflight(),
				PeakInflight:        member.PeakInflight(),
				P99Ms:               stat.seconds.Stats().Quantile(0.99) * 1e3,
			}
		}
	}
	for _, stg := range obs.Stages() {
		hs := s.stages.Histogram(stg)
		st.Stages[stg.String()] = api.StageStatus{
			Count: hs.Count,
			P50Us: hs.Quantile(0.50) * 1e6,
			P95Us: hs.Quantile(0.95) * 1e6,
			P99Us: hs.Quantile(0.99) * 1e6,
		}
	}
	out, err := jsonMarshal(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSONBytes(w, out)
}

// wantsProm reports whether the client asked for Prometheus text
// exposition: an Accept header naming format version 0.0.4 (what a
// Prometheus scraper sends) or OpenMetrics, or an explicit
// ?format=prometheus override. The default stays the legacy listing.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "openmetrics")
}

// promSnapshot augments the registry snapshot with the StageSet's
// histograms under the rat_stage_seconds family, so both exposition
// formats see the same data.
func (s *Server) promSnapshot() telemetry.Snapshot {
	snap := s.reg.Snapshot()
	if snap.Histograms == nil {
		snap.Histograms = map[string]telemetry.HistogramStats{}
	}
	for _, stg := range obs.Stages() {
		snap.Histograms[`rat_stage_seconds{stage="`+stg.String()+`"}`] = s.stages.Histogram(stg)
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]float64{}
	}
	snap.Gauges["rat_uptime_seconds"] = time.Since(s.start).Seconds()
	return snap
}
