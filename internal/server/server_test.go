package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/worksheet"
)

// encodeWorksheet marshals p in the worksheet JSON form.
func encodeWorksheet(t *testing.T, p core.Parameters) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := worksheet.EncodeJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postPredict sends one worksheet to /v1/predict and returns the raw
// response.
func postPredict(t *testing.T, ts *httptest.Server, p core.Parameters, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/predict"+query, "application/json",
		bytes.NewReader(encodeWorksheet(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestPredictRoundTripBitForBit pins the headline contract: all three
// paper case studies served over HTTP decode back to exactly the
// prediction rat.Predict computes — compared with !=, no tolerance.
func TestPredictRoundTripBitForBit(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(c)
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		status, body := postPredict(t, ts, p, "")
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", c, status, body)
		}
		var wire api.Prediction
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if got := wire.Core(); got != want {
			t.Errorf("%s: served prediction differs from rat.Predict\n got %+v\nwant %+v", c, got, want)
		}
	}
}

// TestPredictMultiRoundTripBitForBit does the same for the multi-FPGA
// extension via the devices/topology query parameters.
func TestPredictMultiRoundTripBitForBit(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	for _, c := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		for _, q := range []struct {
			query string
			cfg   core.MultiConfig
		}{
			{"?devices=2", core.MultiConfig{Devices: 2, Topology: core.SharedChannel}},
			{"?devices=4&topology=independent", core.MultiConfig{Devices: 4, Topology: core.IndependentChannels}},
		} {
			p := paper.Params(c)
			want, err := core.PredictMulti(p, q.cfg)
			if err != nil {
				t.Fatal(err)
			}
			status, body := postPredict(t, ts, p, q.query)
			if status != http.StatusOK {
				t.Fatalf("%s%s: status %d: %s", c, q.query, status, body)
			}
			var wire api.MultiPrediction
			if err := json.Unmarshal(body, &wire); err != nil {
				t.Fatal(err)
			}
			if got := wire.Core(); got != want {
				t.Errorf("%s%s: served prediction differs from rat.PredictMulti", c, q.query)
			}
		}
	}
}

// TestBatchingCachingByteIdentical proves the serving-core machinery
// is invisible: responses with coalescing and caching enabled are
// byte-identical to a server with both disabled, and a cache hit
// replays the exact bytes of the miss that filled it.
func TestBatchingCachingByteIdentical(t *testing.T) {
	plain := httptest.NewServer(New(Config{MaxBatch: 1, CacheSize: -1}).Handler())
	defer plain.Close()
	fancy := httptest.NewServer(New(Config{MaxBatch: 8, Linger: 5 * time.Millisecond, CacheSize: 64}).Handler())
	defer fancy.Close()

	worksheets := make([]core.Parameters, 16)
	for i := range worksheets {
		p := paper.PDF1DParams()
		p.Comp.ClockHz = core.MHz(float64(50 + i))
		worksheets[i] = p
	}

	plainBodies := make([][]byte, len(worksheets))
	for i, p := range worksheets {
		status, body := postPredict(t, plain, p, "")
		if status != http.StatusOK {
			t.Fatalf("plain %d: status %d", i, status)
		}
		plainBodies[i] = body
	}

	// Fire the same worksheets at the fancy server concurrently so the
	// coalescer actually merges them, twice so the second pass is
	// served from cache.
	for pass := 0; pass < 2; pass++ {
		var wg sync.WaitGroup
		fancyBodies := make([][]byte, len(worksheets))
		errs := make([]error, len(worksheets))
		for i, p := range worksheets {
			wg.Add(1)
			go func(i int, p core.Parameters) {
				defer wg.Done()
				resp, err := http.Post(fancy.URL+"/v1/predict", "application/json",
					bytes.NewReader(encodeWorksheet(t, p)))
				if err != nil {
					errs[i] = err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[i] = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				fancyBodies[i], errs[i] = io.ReadAll(resp.Body)
			}(i, p)
		}
		wg.Wait()
		for i := range worksheets {
			if errs[i] != nil {
				t.Fatalf("pass %d worksheet %d: %v", pass, i, errs[i])
			}
			if !bytes.Equal(fancyBodies[i], plainBodies[i]) {
				t.Errorf("pass %d worksheet %d: batched/cached response differs from plain response\n got %s\nwant %s",
					pass, i, fancyBodies[i], plainBodies[i])
			}
		}
	}

	resp, err := http.Get(fancy.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), "server.cache_hits") {
		t.Errorf("/metrics does not expose cache counters:\n%s", text)
	}
}

// TestPredictBatchEndpoint checks /v1/predict/batch against scalar
// predictions, element by element, bit for bit.
func TestPredictBatchEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	ps := []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams(), paper.MDParams()}
	docs := make([]worksheet.Doc, len(ps))
	for i, p := range ps {
		docs[i] = worksheet.DocFromParams(p)
	}
	body, err := json.Marshal(docs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/predict/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []api.Prediction
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ps) {
		t.Fatalf("got %d predictions for %d worksheets", len(out), len(ps))
	}
	for i, p := range ps {
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := out[i].Core(); got != want {
			t.Errorf("batch element %d differs from rat.Predict", i)
		}
	}

	// A batch with one invalid worksheet names the offending index.
	bad := docs
	bad[1].Dataset.ElementsIn = -3
	body, _ = json.Marshal(bad)
	resp2, err := http.Post(ts.URL+"/v1/predict/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	msg, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid batch: status %d, want 400", resp2.StatusCode)
	}
	if !strings.Contains(string(msg), "index 1") {
		t.Errorf("invalid batch error does not name the index: %s", msg)
	}
}

// TestExploreEndpoint cross-checks the served exploration against a
// direct explore.Run and exercises the candidate ceiling and the JSONL
// streaming mode.
func TestExploreEndpoint(t *testing.T) {
	srv := New(Config{MaxExploreCandidates: 1000})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := api.ExploreRequest{
		Worksheet:  worksheet.DocFromParams(paper.PDF1DParams()),
		ClocksMHz:  []float64{75, 100, 150},
		Bufferings: []string{"single", "double"},
		TopK:       3,
		Frontier:   true,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, msg)
	}
	var got api.ExploreResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	grid, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := req.Options(0)
	want, err := explore.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evaluated != want.Evaluated || got.Feasible != want.Feasible {
		t.Errorf("evaluated/feasible = %d/%d, want %d/%d",
			got.Evaluated, got.Feasible, want.Evaluated, want.Feasible)
	}
	if len(got.Top) != len(want.Top) {
		t.Fatalf("top length %d, want %d", len(got.Top), len(want.Top))
	}
	for i := range want.Top {
		if got.Top[i].Index != want.Top[i].Index || got.Top[i].Speedup != want.Top[i].Speedup {
			t.Errorf("top[%d] = index %d speedup %v, want index %d speedup %v",
				i, got.Top[i].Index, got.Top[i].Speedup, want.Top[i].Index, want.Top[i].Speedup)
		}
	}
	if len(got.Frontier) != len(want.Frontier) {
		t.Errorf("frontier length %d, want %d", len(got.Frontier), len(want.Frontier))
	}

	// Streaming mode: same candidates as JSONL plus a summary line.
	resp2, err := http.Post(ts.URL+"/v1/explore?stream=jsonl", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("streaming content type %q", ct)
	}
	var tops, frontiers, summaries int
	dec := json.NewDecoder(resp2.Body)
	for {
		var line api.ExploreLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch line.Kind {
		case "top":
			tops++
		case "frontier":
			frontiers++
		case "summary":
			summaries++
			if line.Summary.Evaluated != want.Evaluated {
				t.Errorf("summary evaluated = %d, want %d", line.Summary.Evaluated, want.Evaluated)
			}
		default:
			t.Errorf("unknown line kind %q", line.Kind)
		}
	}
	if tops != len(want.Top) || frontiers != len(want.Frontier) || summaries != 1 {
		t.Errorf("stream lines top/frontier/summary = %d/%d/%d, want %d/%d/1",
			tops, frontiers, summaries, len(want.Top), len(want.Frontier))
	}

	// The ceiling refuses oversized grids outright.
	big := req
	big.ClocksMHz = nil
	for mhz := 1; mhz <= 600; mhz++ {
		big.ClocksMHz = append(big.ClocksMHz, float64(mhz))
	}
	body, _ = json.Marshal(big)
	resp3, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized grid: status %d, want 413", resp3.StatusCode)
	}
}

// TestPredictErrors maps request defects to status codes.
func TestPredictErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	post := func(body, query string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/predict"+query, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(msg)
	}

	if status, _ := post("{not json", ""); status != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", status)
	}
	if status, _ := post(`{"unknown_field": 1}`, ""); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}
	valid := string(encodeWorksheet(t, paper.PDF1DParams()))
	if status, _ := post(valid, "?devices=0"); status != http.StatusBadRequest {
		t.Errorf("devices=0: status %d, want 400", status)
	}
	if status, _ := post(valid, "?topology=ring"); status != http.StatusBadRequest {
		t.Errorf("bad topology: status %d, want 400", status)
	}
	invalid := strings.Replace(valid, `"elements_in": 512`, `"elements_in": -1`, 1)
	if status, msg := post(invalid, ""); status != http.StatusBadRequest {
		t.Errorf("invalid worksheet: status %d (%s), want 400", status, msg)
	}

	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: status %d, want 405", resp.StatusCode)
	}
}

// TestAdmissionControlBurst pins the acceptance criterion: with a
// predict concurrency limit of N, a burst of 4N requests admits at
// most N at a time (telemetry high-water mark) and answers the
// overflow with 429 + Retry-After.
func TestAdmissionControlBurst(t *testing.T) {
	const limit = 4
	reg := telemetry.NewRegistry()
	srv := New(Config{
		// A large batch plus long linger holds every admitted request
		// in flight long enough for the burst to pile up behind the
		// semaphore.
		MaxBatch:      1024,
		Linger:        300 * time.Millisecond,
		CacheSize:     -1,
		PredictLimit:  limit,
		AdmissionWait: 10 * time.Millisecond,
		Metrics:       reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const burst = 4 * limit
	statuses := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := paper.PDF1DParams()
			p.Comp.ClockHz = core.MHz(float64(100 + i))
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				bytes.NewReader(encodeWorksheet(t, p)))
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok200, busy429 int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			busy429++
			if retryAfter[i] == "" {
				t.Error("429 response missing Retry-After")
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if ok200+busy429 != burst {
		t.Fatalf("accounted %d of %d requests", ok200+busy429, burst)
	}
	if ok200 < limit {
		t.Errorf("only %d requests succeeded; at least the admitted %d must", ok200, limit)
	}
	if busy429 == 0 {
		t.Error("burst of 4N produced no 429s; admission control is not limiting")
	}

	snap := reg.Snapshot()
	peak := snap.Gauges["server.inflight_peak.predict"]
	if peak == 0 || peak > limit {
		t.Errorf("inflight peak gauge = %v, want in (0, %d]", peak, limit)
	}
	if snap.Counters["server.rejected.predict"] != int64(busy429) {
		t.Errorf("rejected counter = %d, want %d", snap.Counters["server.rejected.predict"], busy429)
	}
}

// TestHealthReadyMetrics covers the operational endpoints.
func TestHealthReadyMetrics(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if st, body := get("/healthz"); st != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", st, body)
	}
	if st, body := get("/readyz"); st != http.StatusOK || body != "ready\n" {
		t.Errorf("/readyz = %d %q", st, body)
	}

	postPredict(t, ts, paper.PDF1DParams(), "")
	if st, body := get("/metrics"); st != http.StatusOK ||
		!strings.Contains(body, "server.requests") ||
		!strings.Contains(body, "server.latency") {
		t.Errorf("/metrics = %d:\n%s", st, body)
	}

	srv.draining.Store(true)
	if st, body := get("/readyz"); st != http.StatusServiceUnavailable || body != "draining\n" {
		t.Errorf("draining /readyz = %d %q", st, body)
	}
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200 (liveness is not readiness)", st)
	}
}

// TestPanicRecovery proves a handler panic yields a well-formed 500,
// not a dropped connection, and bumps the panic counter.
func TestPanicRecovery(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{Metrics: reg})
	// Reach the middleware through a handler that always panics.
	h := srv.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/predict", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	var e api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("panic response is not an error body: %q", rec.Body.String())
	}
	if reg.Snapshot().Counters["server.panics"] != 1 {
		t.Error("panic counter not bumped")
	}
}
