package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/cluster"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/worksheet"
)

// maxDistributedWorkers bounds the fleet size one request may name.
const maxDistributedWorkers = 64

// handleExploreDistributed serves POST /v1/explore/distributed: this
// instance coordinates the embedded explore request across the listed
// worker fleet via internal/cluster and answers with the merged
// result — bit-for-bit what a single node would return — plus fleet
// statistics. The coordinator may appear in its own worker list; the
// default ExploreLimit of 2 leaves an admission slot for its own
// shards, and 429 + Retry-After backs the scheduler off regardless.
//
// The caller's API key (if any) is forwarded to the workers, so on a
// tenanted fleet every shard is charged to the tenant that asked for
// the exploration.
func (s *Server) handleExploreDistributed(w http.ResponseWriter, r *http.Request) {
	tr := traceOf(w)
	t0 := time.Now()
	weight, ok := s.admExplore.admit(r.Context(), 1)
	if !ok {
		writeTooBusy(w, "/v1/explore/distributed")
		return
	}
	defer s.admExplore.release(weight)
	if tr != nil {
		s.stageTr(tr, obs.StageAdmission, time.Since(t0))
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req api.DistributedExploreRequest
	if err := dec.Decode(&req); err != nil {
		err = fmt.Errorf("%w: %v", worksheet.ErrSyntax, err)
		writeError(w, httpStatus(err), err)
		return
	}
	if len(req.Workers) == 0 || len(req.Workers) > maxDistributedWorkers {
		err := fmt.Errorf("%w: workers must list 1..%d ratd base URLs (got %d)",
			core.ErrInvalidParameters, maxDistributedWorkers, len(req.Workers))
		writeError(w, httpStatus(err), err)
		return
	}
	grid, err := req.Explore.Grid()
	if err != nil {
		if !errors.Is(err, core.ErrInvalidParameters) {
			err = fmt.Errorf("%w: %v", core.ErrInvalidParameters, err)
		}
		writeError(w, httpStatus(err), err)
		return
	}
	if err := grid.Validate(); err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	// The distributed ceiling is fleet-scale, far above the per-node
	// one: each shard re-passes the per-node ceiling on its worker.
	span := grid.Size()
	if req.Explore.IndexLo != 0 || req.Explore.IndexHi != 0 {
		if req.Explore.IndexHi > span || req.Explore.IndexLo >= req.Explore.IndexHi {
			err := fmt.Errorf("%w: invalid index range [%d, %d) for grid size %d",
				core.ErrInvalidParameters, req.Explore.IndexLo, req.Explore.IndexHi, span)
			writeError(w, httpStatus(err), err)
			return
		}
		span = req.Explore.IndexHi - req.Explore.IndexLo
	}
	if span > s.cfg.MaxDistributedCandidates {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request asks for %d candidates; this server caps distributed explorations at %d",
				span, s.cfg.MaxDistributedCandidates))
		return
	}

	coord, err := s.newCoordinator(req, apiKey(r))
	if err != nil {
		writeError(w, httpStatus(err), err)
		return
	}
	res, stats, err := coord.Run(r.Context(), req.Explore)
	if err != nil {
		writeError(w, distStatus(err), err)
		return
	}
	if tr != nil {
		s.stageTr(tr, obs.StageKernel, res.Elapsed)
	}

	t0 = time.Now()
	resp := api.DistributedExploreResponse{
		ExploreResponse: api.ExploreResponseFromCore(res, req.Explore.Frontier),
		Cluster:         stats.API(),
	}
	out, err := jsonMarshal(resp)
	if tr != nil {
		s.stageTr(tr, obs.StageEncode, time.Since(t0))
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	setStagesHeaderTr(w, r, tr)
	writeJSONBytes(w, out)
}

// newCoordinator builds the per-request cluster coordinator: one
// typed client per worker URL, light retries (the scheduler owns
// failover), metrics on the server's registry.
func (s *Server) newCoordinator(req api.DistributedExploreRequest, key string) (*cluster.Coordinator, error) {
	shardTimeout := time.Duration(req.ShardTimeoutSeconds * float64(time.Second))
	if shardTimeout <= 0 {
		shardTimeout = 30 * time.Second
	}
	workers := make([]cluster.Remote, 0, len(req.Workers))
	for _, raw := range req.Workers {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("%w: worker %q is not an http(s) base URL", core.ErrInvalidParameters, raw)
		}
		opts := []client.Option{
			// One quick retry per dispatch; persistent failures go
			// back to the scheduler, which work-steals onto the rest
			// of the fleet.
			client.WithRetryPolicy(client.RetryPolicy{MaxRetries: 1, Backoff: 50 * time.Millisecond}),
			// The straggler deadline re-dispatches a slow shard; the
			// transport deadline is the hard stop that frees the
			// in-flight slot afterwards.
			client.WithHTTPClient(&http.Client{Timeout: shardTimeout + 30*time.Second}),
		}
		if key != "" {
			opts = append(opts, client.WithAPIKey(key))
		}
		workers = append(workers, cluster.Remote{Name: raw, W: client.New(raw, opts...)})
	}
	return cluster.New(cluster.Config{
		Workers:      workers,
		ShardSize:    req.ShardSize,
		MaxInflight:  req.MaxInflight,
		ShardTimeout: shardTimeout,
		Metrics:      s.reg,
	})
}

// distStatus maps a coordinator error to an HTTP status: fleet
// failures are 502 (the upstream workers misbehaved), everything else
// follows the ordinary mapping.
func distStatus(err error) int {
	if errors.Is(err, cluster.ErrFleet) {
		return http.StatusBadGateway
	}
	return httpStatus(err)
}
