package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// FuzzDecodeWorksheetRequest pins the hostile-input contract of the
// predict endpoint at both layers. The decoder must classify every
// failure into the ErrInvalidParameters / ErrSyntax sentinel families
// (so httpStatus maps it to 400), and the full handler must answer
// malformed bodies with 400 — never a panic, never a 5xx.
func FuzzDecodeWorksheetRequest(f *testing.F) {
	var valid bytes.Buffer
	if err := worksheet.EncodeJSON(&valid, paper.PDF1DParams()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String(), "", "")
	f.Add(valid.String(), "4", "independent")
	f.Add(valid.String(), "0", "ring")
	f.Add(valid.String(), "-1", "")
	f.Add(valid.String(), "many", "shared")
	f.Add("", "", "")
	f.Add("{", "", "")
	f.Add("null", "", "")
	f.Add("[]", "", "")
	f.Add(`{"unknown_field": 1}`, "", "")
	f.Add(`{"dataset": {"elements_in": -7}}`, "", "")
	f.Add(`{"computation": {"clock_mhz": 1e309}}`, "", "")
	f.Add(`{"software": {"tsoft_seconds": "NaN"}}`, "", "")
	f.Add(strings.Replace(valid.String(), `"elements_in": 512`, `"elements_in": 1e99`, 1), "2", "")

	srv := New(Config{MaxBatch: 1, CacheSize: -1}) // direct path: no linger in the fuzz loop
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, body, devices, topology string) {
		// Layer 1: the decoder either succeeds or returns a classified
		// error from the 400 families.
		_, _, err := decodePredictRequest([]byte(body), devices, topology)
		if err != nil &&
			!errors.Is(err, core.ErrInvalidParameters) &&
			!errors.Is(err, worksheet.ErrSyntax) {
			t.Fatalf("decode error escaped the sentinel families: %v", err)
		}

		// Layer 2: the handler never answers 5xx to request defects. A
		// panic would fail the fuzz run on its own. (Escaping keeps
		// hostile bytes as parameter values rather than URL syntax.)
		q := "?devices=" + url.QueryEscape(devices) + "&topology=" + url.QueryEscape(topology)
		req := httptest.NewRequest(http.MethodPost, "/v1/predict"+q, strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest:
		default:
			t.Fatalf("handler answered %d for body %q devices %q topology %q; want 200 or 400\nbody: %s",
				rec.Code, body, devices, topology, rec.Body.String())
		}
		if err != nil && rec.Code == http.StatusOK {
			t.Fatalf("decoder rejected the request but the handler served it: %v", err)
		}
	})
}
