package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/worksheet"
)

func predictBody(t testing.TB) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
		t.Fatal(err)
	}
	return body.Bytes()
}

// TestTraceHeaderEcho: a request carrying X-Rat-Trace gets the exact
// value echoed on the response, traced or not, success or error.
func TestTraceHeaderEcho(t *testing.T) {
	srv := New(Config{MaxBatch: 1})
	h := srv.Handler()
	hdr := obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	req.Header.Set(obs.TraceHeader, hdr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(obs.TraceHeader); got != hdr {
		t.Errorf("trace header echo = %q, want %q", got, hdr)
	}

	// Malformed header: ignored, not echoed (and no crash).
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	req.Header.Set(obs.TraceHeader, "not-a-trace")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "" {
		t.Errorf("malformed trace header echoed as %q, want empty", got)
	}

	// Untraced request without logging: no header is minted.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.TraceHeader); got != "" {
		t.Errorf("untraced request got minted header %q", got)
	}
}

// TestTraceGeneratedWhenLogging: with an access logger configured the
// server mints a trace for bare requests so every log line has an ID,
// and the response carries it.
func TestTraceGeneratedWhenLogging(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(Config{
		MaxBatch:     1,
		AccessLogger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	hdr := rec.Header().Get(obs.TraceHeader)
	id, _, ok := obs.ParseTraceHeader(hdr)
	if !ok || id.IsZero() {
		t.Fatalf("minted trace header %q does not parse", hdr)
	}

	var line struct {
		Msg      string `json:"msg"`
		Method   string `json:"method"`
		Path     string `json:"path"`
		Status   int    `json:"status"`
		TraceID  string `json:"trace_id"`
		SpanID   string `json:"span_id"`
		StagesNs string `json:"stages_ns"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log line does not parse: %v\n%s", err, logBuf.String())
	}
	if line.Msg != "request" || line.Method != "POST" || line.Path != "/v1/predict" || line.Status != 200 {
		t.Errorf("log line fields wrong: %+v", line)
	}
	if line.TraceID != id.String() {
		t.Errorf("log trace_id %q != response header trace %q", line.TraceID, id.String())
	}
	for _, stg := range obs.Stages() {
		if !strings.Contains(line.StagesNs, stg.String()+"=") {
			t.Errorf("stages_ns %q missing stage %s", line.StagesNs, stg)
		}
	}
}

// TestStagesHeaderOptIn: the per-stage breakdown comes back only when
// asked for via X-Rat-Stages, and only on traced requests.
func TestStagesHeaderOptIn(t *testing.T) {
	srv := New(Config{MaxBatch: 1})
	h := srv.Handler()
	hdr := obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())

	// Traced + opted in: breakdown present with every stage.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	req.Header.Set(obs.TraceHeader, hdr)
	req.Header.Set(obs.StagesHeader, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	breakdown := rec.Header().Get(obs.StagesHeader)
	if breakdown == "" {
		t.Fatal("opted-in traced request got no X-Rat-Stages response header")
	}
	for _, stg := range obs.Stages() {
		if !strings.Contains(breakdown, stg.String()+"=") {
			t.Errorf("breakdown %q missing stage %s", breakdown, stg)
		}
	}

	// Traced, not opted in: absent.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	req.Header.Set(obs.TraceHeader, hdr)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.StagesHeader); got != "" {
		t.Errorf("non-opted request got X-Rat-Stages %q", got)
	}

	// Opted in but untraced: nothing to report, header absent.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
	req.Header.Set(obs.StagesHeader, "1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.StagesHeader); got != "" {
		t.Errorf("untraced opted request got X-Rat-Stages %q", got)
	}
}

// TestMetricsPromConformance drives traffic, scrapes /metrics with a
// Prometheus Accept header, and runs the exposition through the
// conformance validator. The legacy listing must survive untouched on
// the default path.
func TestMetricsPromConformance(t *testing.T) {
	srv := New(Config{MaxBatch: 1})
	h := srv.Handler()
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t))))
		if rec.Code != http.StatusOK {
			t.Fatalf("predict status %d", rec.Code)
		}
	}
	// One client error so a non-200 code series exists.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad predict status %d, want 400", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != telemetry.ContentTypeProm {
		t.Errorf("prom content type = %q", ct)
	}
	exposition := rec.Body.String()
	if err := telemetry.ValidateProm(exposition); err != nil {
		t.Fatalf("/metrics exposition is not conformant: %v\n%s", err, exposition)
	}
	for _, want := range []string{
		`rat_requests_total{code="200",endpoint="predict"} 3`,
		`rat_requests_total{code="400",endpoint="predict"} 1`,
		"# TYPE rat_request_seconds histogram",
		`rat_stage_seconds_bucket{stage="kernel",le="+Inf"}`,
		"rat_inflight",
		"rat_uptime_seconds",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// ?format=prometheus works without the Accept header.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil))
	if err := telemetry.ValidateProm(rec.Body.String()); err != nil {
		t.Errorf("?format=prometheus exposition invalid: %v", err)
	}

	// Default scrape stays the legacy listing.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	legacy := rec.Body.String()
	if !strings.Contains(legacy, "server.requests") || !strings.Contains(legacy, "server.cache_hits") {
		t.Errorf("legacy metrics listing lost its names:\n%s", legacy)
	}
}

// TestStatusEndpoint checks the /v1/status snapshot after known
// traffic: request counts, cache ratio, stage counts. The requests
// carry a trace header because stage bookkeeping only runs for traced
// requests (untraced ones skip the clock reads entirely).
func TestStatusEndpoint(t *testing.T) {
	srv := New(Config{MaxBatch: 1})
	h := srv.Handler()
	hdr := obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())
	for i := 0; i < 4; i++ { // 1 miss + 3 hits
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody(t)))
		req.Header.Set(obs.TraceHeader, hdr)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict status %d", rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status endpoint returned %d", rec.Code)
	}
	var st api.Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status body does not parse: %v", err)
	}
	if st.Requests < 4 {
		t.Errorf("requests = %d, want >= 4", st.Requests)
	}
	if st.UptimeSeconds <= 0 || st.QPS <= 0 {
		t.Errorf("uptime/qps = %g/%g, want positive", st.UptimeSeconds, st.QPS)
	}
	if st.Draining {
		t.Error("fresh server reports draining")
	}
	ep, ok := st.Endpoints["predict"]
	if !ok || ep.Requests != 4 {
		t.Errorf("predict endpoint status = %+v (ok=%v), want 4 requests", ep, ok)
	}
	if st.Cache.Hits != 3 || st.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 3/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.HitRatio < 0.74 || st.Cache.HitRatio > 0.76 {
		t.Errorf("hit ratio = %g, want 0.75", st.Cache.HitRatio)
	}
	if st.Stages["admission"].Count != 4 || st.Stages["cache"].Count != 4 {
		t.Errorf("stage counts admission/cache = %d/%d, want 4/4",
			st.Stages["admission"].Count, st.Stages["cache"].Count)
	}
	if st.Stages["kernel"].Count != 1 {
		t.Errorf("kernel stage count = %d, want 1 (one cache miss)", st.Stages["kernel"].Count)
	}
}

// TestTracedAllocOverhead pins the design budget with the runtime's
// own accounting: serving a traced cached-hit request allocates at
// most 2 more objects than the identical untraced request.
func TestTracedAllocOverhead(t *testing.T) {
	srv := New(Config{MaxBatch: 1})
	h := srv.Handler()
	payload := predictBody(t)

	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload)))
	if warm.Code != http.StatusOK {
		t.Fatalf("warmup status %d", warm.Code)
	}

	hdr := obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())
	traceHeader := http.Header{obs.TraceHeader: []string{hdr}}
	run := func(traced bool) float64 {
		return testing.AllocsPerRun(200, func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(payload))
			if traced {
				req.Header = traceHeader
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("status %d", rec.Code)
			}
		})
	}
	untraced := run(false)
	traced := run(true)
	if diff := traced - untraced; diff > 2 {
		t.Errorf("traced path allocates %.1f/op vs %.1f/op untraced (+%.1f, budget +2)",
			traced, untraced, diff)
	}
}

// TestExploreSpansOptIn: span lines appear in the JSONL stream only
// with ?spans=1, and cover the whole candidate index space.
func TestExploreSpansOptIn(t *testing.T) {
	srv := New(Config{})
	h := srv.Handler()
	reqBody := func() *bytes.Reader {
		body, err := json.Marshal(map[string]any{
			"worksheet":  json.RawMessage(predictBody(t)),
			"clocks_mhz": []float64{50, 100, 150, 200},
			"alphas":     []float64{0.5, 0.7, 0.9},
			"top_k":      3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(body)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/explore?stream=jsonl&spans=1", reqBody()))
	if rec.Code != http.StatusOK {
		t.Fatalf("explore status %d: %s", rec.Code, rec.Body.String())
	}
	var spanLines, summaryLines int
	var covered uint64
	var summary api.ExploreSummary
	dec := json.NewDecoder(rec.Body)
	for dec.More() {
		var line api.ExploreLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		switch line.Kind {
		case "span":
			spanLines++
			if line.Span == nil || line.Span.Hi <= line.Span.Lo {
				t.Fatalf("malformed span line: %+v", line.Span)
			}
			covered += line.Span.Hi - line.Span.Lo
		case "summary":
			summaryLines++
			summary = *line.Summary
		}
	}
	if spanLines == 0 || summaryLines != 1 {
		t.Fatalf("got %d span lines, %d summaries; want >0 and 1", spanLines, summaryLines)
	}
	if covered != summary.Evaluated {
		t.Errorf("spans cover %d candidates, summary says %d evaluated", covered, summary.Evaluated)
	}

	// Without spans=1 the stream must not contain span lines (older
	// consumers reject unknown kinds).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/explore?stream=jsonl", reqBody()))
	if rec.Code != http.StatusOK {
		t.Fatalf("explore status %d", rec.Code)
	}
	dec = json.NewDecoder(rec.Body)
	for dec.More() {
		var line api.ExploreLine
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Kind == "span" {
			t.Fatal("span line emitted without opt-in")
		}
	}
}
