package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/tenant"
)

// tenancy is the multi-tenant admission layer: API-key identity,
// per-tenant token-bucket quotas and concurrency caps, and per-tenant
// RED metrics. It sits in the middleware in front of the shared
// priority semaphore, so a tenant over its quota is refused before it
// can occupy any of the pool. A Server without a tenant registry has
// no tenancy layer at all and its request path is byte-identical to
// the pre-tenancy server.
type tenancy struct {
	reg         *tenant.Registry
	exploreCost float64

	metrics *telemetry.Registry
	// rejectAuth is the one rejection counter whose tenant label is the
	// reserved "unknown": requests whose key resolves to no tenant.
	rejectAuth *telemetry.Counter

	mu     sync.RWMutex
	byName map[string]*tenantStat
}

// tenantStat holds one tenant's pre-created metric handles. The label
// set is bounded: stats exist only for names in the validated tenant
// config (plus the reserved "unknown" for auth failures), never for
// raw request input.
type tenantStat struct {
	requests    *telemetry.Counter
	rejectQuota *telemetry.Counter
	rejectConc  *telemetry.Counter
	seconds     *telemetry.Histogram
}

// newTenancy builds the layer over a non-nil tenant registry.
func newTenancy(metrics *telemetry.Registry, reg *tenant.Registry, exploreCost float64) *tenancy {
	t := &tenancy{
		reg:         reg,
		exploreCost: exploreCost,
		metrics:     metrics,
		// The "unknown" tenant is a reserved literal, not request input.
		rejectAuth: metrics.Counter(`rat_tenant_rejections_total{reason="auth",tenant="unknown"}`),
		byName:     make(map[string]*tenantStat),
	}
	for _, name := range reg.Names() {
		t.byName[name] = t.newStat(name)
	}
	return t
}

// newStat creates the metric handles for one configured tenant name.
// The name has passed tenant.ValidateName, so it cannot break the
// exposition format or blow up the label cardinality.
func (t *tenancy) newStat(name string) *tenantStat {
	return &tenantStat{
		//rat:bounded-labels tenant names come from the validated -tenants config, never request input
		requests: t.metrics.Counter(fmt.Sprintf(`rat_tenant_requests_total{tenant="%s"}`, name)),
		//rat:bounded-labels tenant names come from the validated -tenants config, never request input
		rejectQuota: t.metrics.Counter(fmt.Sprintf(`rat_tenant_rejections_total{reason="quota",tenant="%s"}`, name)),
		//rat:bounded-labels tenant names come from the validated -tenants config, never request input
		rejectConc: t.metrics.Counter(fmt.Sprintf(`rat_tenant_rejections_total{reason="concurrency",tenant="%s"}`, name)),
		//rat:bounded-labels tenant names come from the validated -tenants config, never request input
		seconds: t.metrics.Histogram(fmt.Sprintf(`rat_tenant_request_seconds{tenant="%s"}`, name), requestSecondsBounds),
	}
}

// stat returns the metric handles for a configured tenant name,
// creating them on first use after a reload introduced the name.
func (t *tenancy) stat(name string) *tenantStat {
	t.mu.RLock()
	st, ok := t.byName[name]
	t.mu.RUnlock()
	if ok {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.byName[name]; ok {
		return st
	}
	st = t.newStat(name)
	t.byName[name] = st
	return st
}

// apiKey extracts the request's API key: "Authorization: Bearer
// <key>" first, the X-Rat-Key header as the fallback.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); len(h) > 7 && strings.EqualFold(h[:7], "Bearer ") {
		return strings.TrimSpace(h[7:])
	}
	return r.Header.Get("X-Rat-Key")
}

// tokenCost is the bucket charge for admitting one request of the
// given endpoint class. Batch requests are charged 1 here and topped
// up per extra worksheet after decode (the count is not known before
// the body is read).
func (t *tenancy) tokenCost(ep endpointClass) float64 {
	if ep == epExplore {
		return t.exploreCost
	}
	return 1
}

// admit authenticates and rate-limits one API request at time now. On
// success it marks sw with the tenant (the middleware releases the
// concurrency slot and records latency when the request finishes) and
// returns true. On refusal it writes the full response — 401 for an
// unknown key, 429 + Retry-After for an exhausted quota or
// concurrency cap — records the rejection, and returns false.
func (t *tenancy) admit(sw *statusWriter, r *http.Request, ep endpointClass, now time.Time) bool {
	member, ok := t.reg.Lookup(apiKey(r))
	if !ok {
		t.rejectAuth.Inc()
		sw.Header().Set("WWW-Authenticate", `Bearer realm="rat"`)
		writeError(sw, http.StatusUnauthorized,
			errors.New("unknown or missing API key (Authorization: Bearer or X-Rat-Key)"))
		return false
	}
	st := t.stat(member.Name)
	if ok, retry := member.Bucket().Take(now, t.tokenCost(ep)); !ok {
		st.rejectQuota.Inc()
		sw.quotaShed = true
		writeQuotaExceeded(sw, member.Name, retry)
		return false
	}
	if !member.AcquireSlot() {
		st.rejectConc.Inc()
		sw.quotaShed = true
		sw.Header().Set("Retry-After", "1")
		writeError(sw, http.StatusTooManyRequests,
			fmt.Errorf("tenant %q is at its max_inflight concurrency cap", member.Name))
		return false
	}
	st.requests.Inc()
	sw.member = member
	sw.tstat = st
	return true
}

// finish closes out an admitted tenant request: the concurrency slot
// comes back and the latency lands in the tenant's histogram. Called
// from the middleware's deferred block, so it runs on the panic path
// too — a dying handler cannot leak a tenant slot.
func (t *tenancy) finish(sw *statusWriter, elapsed time.Duration) {
	sw.member.ReleaseSlot()
	sw.tstat.seconds.Observe(elapsed.Seconds())
}

// retryAfterSeconds renders a refill wait as a Retry-After value:
// whole seconds, rounded up so the advertised instant is never before
// the bucket can actually grant, floored at 1 (the header's smallest
// useful value).
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// writeQuotaExceeded answers 429 for a tenant over its token-bucket
// quota, with Retry-After derived from the bucket's actual refill
// time rather than a fixed guess.
func writeQuotaExceeded(w http.ResponseWriter, name string, retry time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
	writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q is over its request quota; retry after the indicated delay", name))
}
