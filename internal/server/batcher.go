package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/telemetry"
)

// batcher coalesces concurrent single-worksheet predict calls into one
// core.PredictBatch evaluation over a pooled slab. Because the batch
// kernel is bit-for-bit identical to core.Predict, coalescing is
// invisible in the responses — it only changes how many times the
// validation-free kernel is entered per syscall-scale unit of work.
//
// The flush discipline is size-or-linger: the request that fills the
// batch computes it immediately on its own goroutine; otherwise a
// linger timer flushes whatever has accumulated. Requests whose
// context expires while waiting get the context error; their slot is
// still computed (the result is discarded into the buffered channel).
type batcher struct {
	maxBatch int
	linger   time.Duration
	// lingerScale widens the linger under brownout (bulk coalesces
	// harder when the server is shedding load). 1 when healthy; set
	// by the brownout controller's onChange hook.
	lingerScale atomic.Int32

	mu      sync.Mutex
	pending []batchReq
	timer   *time.Timer

	slabs sync.Pool // of *slab

	batches   *telemetry.Counter
	coalesced *telemetry.Counter
	sizeHist  *telemetry.Histogram
}

type batchReq struct {
	p    core.Parameters
	done chan batchResult // buffered(1): flusher never blocks on a dead waiter
}

type batchResult struct {
	pr core.Prediction
	// kernelNs is how long the batch's PredictBatch call ran — the
	// kernel share of this request's wait, reported so handlers can
	// split batch_wait from kernel time without a second channel.
	kernelNs int64
	err      error
}

type slab struct {
	ps  []core.Parameters
	out []core.Prediction
}

// newBatcher builds a coalescing batcher. maxBatch <= 1 disables
// coalescing: predict degenerates to a direct core.Predict call.
func newBatcher(reg *telemetry.Registry, maxBatch int, linger time.Duration) *batcher {
	b := &batcher{
		maxBatch:  maxBatch,
		linger:    linger,
		batches:   reg.Counter("server.batches"),
		coalesced: reg.Counter("server.coalesced_requests"),
		sizeHist:  reg.Histogram("server.batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
	}
	b.slabs.New = func() any {
		return &slab{
			ps:  make([]core.Parameters, 0, maxBatch),
			out: make([]core.Prediction, maxBatch),
		}
	}
	return b
}

// coalescing reports whether the batcher actually batches. When it
// does not, handlers skip it entirely — a direct core.Predict needs no
// context, no channel and no clock reads.
func (b *batcher) coalescing() bool { return b.maxBatch > 1 }

// predict evaluates one pre-validated worksheet, possibly sharing a
// batch with concurrent callers. The result is bit-for-bit
// core.Predict(p). The second return is the kernel's share of the
// elapsed time in nanoseconds; the caller's wait minus it is time
// spent lingering for batch-mates.
func (b *batcher) predict(ctx context.Context, p core.Parameters) (core.Prediction, int64, error) {
	if b.maxBatch <= 1 {
		t0 := time.Now()
		pr, err := core.Predict(p)
		return pr, int64(time.Since(t0)), err
	}
	req := batchReq{p: p, done: make(chan batchResult, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, req)
	if len(b.pending) >= b.maxBatch {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.compute(batch) // the filler computes; no goroutine handoff latency
	} else {
		if len(b.pending) == 1 {
			linger := b.linger
			if scale := b.lingerScale.Load(); scale > 1 {
				linger *= time.Duration(scale)
			}
			b.timer = time.AfterFunc(linger, b.flush)
		}
		b.mu.Unlock()
	}
	select {
	case res := <-req.done:
		return res.pr, res.kernelNs, res.err
	case <-ctx.Done():
		return core.Prediction{}, 0, ctx.Err()
	}
}

// takeLocked steals the pending batch and disarms the linger timer.
func (b *batcher) takeLocked() []batchReq {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flush computes whatever accumulated before the linger expired.
//
//rat:hotpath
func (b *batcher) flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.compute(batch)
}

// compute runs one coalesced batch through the zero-alloc kernel and
// fans the results back out.
//
//rat:hotpath
func (b *batcher) compute(batch []batchReq) {
	if len(batch) == 0 {
		return
	}
	b.batches.Inc()
	b.sizeHist.Observe(float64(len(batch)))
	if len(batch) > 1 {
		b.coalesced.Add(int64(len(batch)))
	}
	sl := b.slabs.Get().(*slab)
	sl.ps = sl.ps[:0]
	for _, req := range batch {
		sl.ps = append(sl.ps, req.p)
	}
	t0 := time.Now()
	err := core.PredictBatch(sl.ps, sl.out)
	kernelNs := int64(time.Since(t0))
	if err != nil {
		// Entries are validated at decode time, so a batch error means
		// one slipped through; fall back to per-request evaluation so
		// the bad entry cannot poison its batch-mates.
		for _, req := range batch {
			t0 := time.Now()
			pr, perr := core.Predict(req.p)
			req.done <- batchResult{pr: pr, kernelNs: int64(time.Since(t0)), err: perr}
		}
		b.slabs.Put(sl)
		return
	}
	for i, req := range batch {
		req.done <- batchResult{pr: sl.out[i], kernelNs: kernelNs}
	}
	b.slabs.Put(sl)
}
