package kernel_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/kernel"
	"github.com/chrec/rat/internal/resource"
)

// figure3 is the 1-D PDF architecture used as a known-good design.
func figure3() kernel.Design {
	return kernel.Design{
		Name:      "fig3",
		Pipelines: 8,
		Units: []kernel.Unit{
			{Op: resource.OpAdd, Width: 18},
			{Op: resource.OpLUT, Width: 18},
			{Op: resource.OpMAC, Width: 18},
		},
		CountedOps:      3,
		ItemsPerElement: 256,
		ItemsPerCycle:   1,
		PipelineDepth:   18,
		ElementStall:    8,
		BatchOverhead:   352,
		Derating:        20.0 / 24.0,
		ElementBits:     32,
		StateBits:       48,
	}
}

func TestValidate(t *testing.T) {
	if err := figure3().Validate(); err != nil {
		t.Fatalf("known-good design rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*kernel.Design)
	}{
		{"zero pipelines", func(d *kernel.Design) { d.Pipelines = 0 }},
		{"no units", func(d *kernel.Design) { d.Units = nil }},
		{"zero items", func(d *kernel.Design) { d.ItemsPerElement = 0 }},
		{"zero items per cycle", func(d *kernel.Design) { d.ItemsPerCycle = 0 }},
		{"negative depth", func(d *kernel.Design) { d.PipelineDepth = -1 }},
		{"negative stall", func(d *kernel.Design) { d.ElementStall = -1 }},
		{"negative overhead", func(d *kernel.Design) { d.BatchOverhead = -1 }},
		{"derating above one", func(d *kernel.Design) { d.Derating = 1.5 }},
		{"negative derating", func(d *kernel.Design) { d.Derating = -0.1 }},
		{"negative counted ops", func(d *kernel.Design) { d.CountedOps = -1 }},
		{"bad unit width", func(d *kernel.Design) { d.Units[0].Width = 0 }},
		{"huge unit width", func(d *kernel.Design) { d.Units[0].Width = 128 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := figure3()
			tc.mutate(&d)
			if err := d.Validate(); !errors.Is(err, kernel.ErrBadDesign) {
				t.Errorf("error = %v, want ErrBadDesign", err)
			}
		})
	}
}

func TestDerivedThroughputNumbers(t *testing.T) {
	d := figure3()
	if got := d.OpsPerItem(); got != 3 {
		t.Errorf("OpsPerItem = %d", got)
	}
	if got := d.OpsPerElement(); got != 768 {
		t.Errorf("OpsPerElement = %g", got)
	}
	if got := d.IdealThroughputProc(); got != 24 {
		t.Errorf("IdealThroughputProc = %g", got)
	}
	if got := d.WorksheetThroughputProc(); got != 20 {
		t.Errorf("WorksheetThroughputProc = %g", got)
	}
	// Without derating the worksheet value is the ideal.
	d.Derating = 0
	if got := d.WorksheetThroughputProc(); got != 24 {
		t.Errorf("undeclared derating: %g, want ideal 24", got)
	}
	// CountedOps overrides the structural count.
	d.CountedOps = 6
	if got := d.OpsPerElement(); got != 256*6 {
		t.Errorf("CountedOps override: OpsPerElement = %g", got)
	}
	d.CountedOps = 0
	if got := d.OpsPerItem(); got != len(d.Units) {
		t.Errorf("structural fallback: OpsPerItem = %d", got)
	}
}

func TestItemCyclesPerElement(t *testing.T) {
	d := figure3()
	if got := d.ItemCyclesPerElement(); got != 32 { // 256 bins / 8 pipelines
		t.Errorf("ItemCyclesPerElement = %d, want 32", got)
	}
	// Non-divisible items round up.
	d.ItemsPerElement = 257
	if got := d.ItemCyclesPerElement(); got != 33 {
		t.Errorf("ceil division: %d, want 33", got)
	}
	// Multiple items per cycle divide further.
	d.ItemsPerElement = 256
	d.ItemsPerCycle = 2
	if got := d.ItemCyclesPerElement(); got != 16 {
		t.Errorf("ItemsPerCycle=2: %d, want 16", got)
	}
}

func TestCyclesForBatch(t *testing.T) {
	d := figure3()
	if got := d.CyclesForBatch(512); got != 20850 {
		t.Errorf("CyclesForBatch(512) = %d, want 20850", got)
	}
	if got := d.CyclesForBatch(0); got != 352 {
		t.Errorf("empty batch = %d, want just the overhead", got)
	}
	if got := d.CyclesForBatch(-5); got != 352 {
		t.Errorf("negative batch = %d, want just the overhead", got)
	}
	// Linear in batch size beyond the fixed terms.
	d1, d2 := d.CyclesForBatch(100), d.CyclesForBatch(200)
	if d2-d1 != 100*(32+8) {
		t.Errorf("marginal cost per element = %d, want 40", (d2-d1)/100)
	}
}

func TestEffectiveThroughputProc(t *testing.T) {
	d := figure3()
	eff := d.EffectiveThroughputProc(512)
	// Below ideal, near the derated estimate.
	if eff >= d.IdealThroughputProc() || eff < 18 {
		t.Errorf("effective = %g, want in [18, 24)", eff)
	}
	// Larger batches amortize fixed costs: effectiveness grows.
	if d.EffectiveThroughputProc(64) >= eff {
		t.Error("small batches must be less effective")
	}
	if got := d.EffectiveThroughputProc(0); got != 0 {
		// Zero elements: zero ops over pure overhead cycles.
		t.Errorf("zero batch effective = %g", got)
	}
}

func TestResourceDemand(t *testing.T) {
	d := figure3()
	dev := resource.VirtexLX100
	dm, err := d.ResourceDemand(dev, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	// One MAC per pipeline: 8 DSPs.
	if dm.DSP != 8 {
		t.Errorf("DSP demand = %d, want 8", dm.DSP)
	}
	// BRAM: 8 pipeline LUTs + state + I/O buffer + wrapper.
	if dm.BRAM < 20 || dm.BRAM > 40 {
		t.Errorf("BRAM demand = %d, want ~25", dm.BRAM)
	}
	if dm.Logic <= 0 {
		t.Error("logic demand must be positive")
	}
	// Double buffering costs more BRAM, same DSPs.
	dm2, err := d.ResourceDemand(dev, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if dm2.BRAM < dm.BRAM || dm2.DSP != dm.DSP {
		t.Errorf("double buffering: %+v vs %+v", dm2, dm)
	}
	// Invalid design refuses to estimate.
	bad := d
	bad.Pipelines = 0
	if _, err := bad.ResourceDemand(dev, 512, false); !errors.Is(err, kernel.ErrBadDesign) {
		t.Errorf("error = %v, want ErrBadDesign", err)
	}
	// Unknown operator class propagates the cost-model error.
	odd := d
	odd.Units = []kernel.Unit{{Op: resource.OpClass("warp"), Width: 18}}
	if _, err := odd.ResourceDemand(dev, 512, false); err == nil {
		t.Error("unknown op class must error")
	}
}

// TestResourceDemandVendorDifference: the same design demands more
// DSP units in Altera 9-bit accounting than Xilinx whole-DSP counting.
func TestResourceDemandVendorDifference(t *testing.T) {
	d := figure3()
	x, err := d.ResourceDemand(resource.VirtexLX100, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.ResourceDemand(resource.StratixEP2S180, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.DSP <= x.DSP {
		t.Errorf("9-bit element accounting (%d) should exceed whole-DSP counting (%d)", a.DSP, x.DSP)
	}
}

func TestDescribe(t *testing.T) {
	out := figure3().Describe()
	for _, want := range []string{"fig3", "8 parallel pipelines", "mac(18)", "768", "24 ops/cycle", "worksheet: 20"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	// Without derating the worksheet note disappears.
	d := figure3()
	d.Derating = 0
	if strings.Contains(d.Describe(), "derating") {
		t.Error("underated design should not mention derating")
	}
}

// TestScalingConsistency: doubling pipelines halves item cycles (for
// divisible workloads) and doubles operator demand.
func TestScalingConsistency(t *testing.T) {
	d := figure3()
	wide := d
	wide.Pipelines = 16
	if wide.ItemCyclesPerElement() != d.ItemCyclesPerElement()/2 {
		t.Error("pipeline doubling should halve per-element cycles")
	}
	if math.Abs(wide.IdealThroughputProc()-2*d.IdealThroughputProc()) > 1e-12 {
		t.Error("pipeline doubling should double throughput")
	}
	dm, _ := d.ResourceDemand(resource.VirtexLX100, 512, false)
	dmWide, _ := wide.ResourceDemand(resource.VirtexLX100, 512, false)
	if dmWide.DSP != 2*dm.DSP {
		t.Errorf("DSP demand %d -> %d, want doubled", dm.DSP, dmWide.DSP)
	}
}
