// Package kernel describes replicated-pipeline FPGA kernel designs at
// the level RAT reasons about: a set of operator units per pipeline, a
// replication factor, and the batch geometry (how many work items each
// element traverses and how fast items retire).
//
// A Design is the bridge between the paper's three tests. From one
// description the package derives:
//
//   - the throughput-test inputs N_ops/element and throughput_proc
//     (Section 3.1), including the conservative derating the paper
//     applies ("conservatively rounded down to 20 to account for
//     pipeline latency and other overheads");
//   - the resource-test demand (Section 3.3) via the per-device
//     operator cost model in package resource; and
//   - a cycle-accurate batch timing model for the simulated platform
//     (package rcsim), which plays the role of the real hardware the
//     paper measured.
//
// The 1-D PDF architecture of Figure 3 — eight pipelines, each
// processing one data sample against one bin per cycle with a
// subtract/multiply/accumulate datapath — is the canonical example and
// ships as a constructor in package apps/pdf1d.
package kernel

import (
	"errors"
	"fmt"
	"strings"

	"github.com/chrec/rat/internal/resource"
)

// Unit is one operator instance inside a pipeline, active every cycle.
type Unit struct {
	Op    resource.OpClass
	Width int // operand bit width
}

// Design is a replicated-pipeline kernel description.
type Design struct {
	Name string

	// Pipelines is the replication factor: how many identical
	// pipelines operate in parallel (8 in Figure 3).
	Pipelines int

	// Units lists the operator instances in one pipeline. Each work
	// item flows through all of them, so len(Units) is the
	// operation count per item (3 for the 1-D PDF: compare,
	// multiply, add).
	Units []Unit

	// CountedOps is the number of operations per work item as the
	// RAT worksheet counts them. The paper's op accounting is a
	// modelling convention (Section 3.1's Booth-multiplier
	// discussion): table lookups count as zero, a MAC counts as two
	// (multiply and add). Zero means "use len(Units)".
	CountedOps int

	// ItemsPerElement is how many work items one element generates
	// (256 bins in the 1-D PDF, 65536 in the 2-D).
	ItemsPerElement int

	// ItemsPerCycle is how many items one pipeline retires per
	// cycle once full (1 for both PDF designs).
	ItemsPerCycle int

	// PipelineDepth is the fill latency in cycles.
	PipelineDepth int

	// ElementStall is the number of dead cycles a pipeline spends
	// between consecutive elements (operand fetch, address setup).
	ElementStall int

	// BatchOverhead is the fixed per-batch control cost in cycles
	// (handshakes, buffer swaps, drain).
	BatchOverhead int

	// Derating scales the ideal operations-per-cycle down to the
	// value a RAT worksheet should use, reflecting the paper's
	// practice of conservative estimation (20/24 for the 1-D PDF).
	// Zero means no derating (use the ideal value).
	Derating float64

	// ElementBits is the on-chip storage width per buffered element
	// and StateBits the per-item running state (the PDF bin
	// accumulators); both feed the BRAM estimate.
	ElementBits int
	StateBits   int
}

// ErrBadDesign tags validation failures.
var ErrBadDesign = errors.New("kernel: invalid design")

// First-order logic overheads used by ResourceDemand: the per-pipeline
// sequencing FSM and the global batch controller / host handshake, in
// Xilinx slices (doubled for Altera ALUT accounting).
const (
	pipelineControlLogic = 60
	globalControlLogic   = 250
)

// Validate checks structural sanity.
func (d Design) Validate() error {
	switch {
	case d.Pipelines <= 0:
		return fmt.Errorf("%w: %s: pipelines must be positive", ErrBadDesign, d.Name)
	case len(d.Units) == 0:
		return fmt.Errorf("%w: %s: no operator units", ErrBadDesign, d.Name)
	case d.ItemsPerElement <= 0:
		return fmt.Errorf("%w: %s: items per element must be positive", ErrBadDesign, d.Name)
	case d.ItemsPerCycle <= 0:
		return fmt.Errorf("%w: %s: items per cycle must be positive", ErrBadDesign, d.Name)
	case d.PipelineDepth < 0 || d.ElementStall < 0 || d.BatchOverhead < 0:
		return fmt.Errorf("%w: %s: negative latency figure", ErrBadDesign, d.Name)
	case d.Derating < 0 || d.Derating > 1:
		return fmt.Errorf("%w: %s: derating must be in [0, 1]", ErrBadDesign, d.Name)
	case d.CountedOps < 0:
		return fmt.Errorf("%w: %s: negative counted-op override", ErrBadDesign, d.Name)
	}
	for _, u := range d.Units {
		if u.Width <= 0 || u.Width > 64 {
			return fmt.Errorf("%w: %s: unit %s width %d out of range", ErrBadDesign, d.Name, u.Op, u.Width)
		}
	}
	return nil
}

// OpsPerItem returns the operation count applied to each work item,
// as the worksheet counts operations (CountedOps when set, otherwise
// the structural unit count).
func (d Design) OpsPerItem() int {
	if d.CountedOps > 0 {
		return d.CountedOps
	}
	return len(d.Units)
}

// OpsPerElement returns the throughput-test input N_ops/element:
// items per element times operations per item (256 x 3 = 768 for the
// 1-D PDF).
func (d Design) OpsPerElement() float64 {
	return float64(d.ItemsPerElement) * float64(d.OpsPerItem())
}

// IdealThroughputProc returns the peak operations per cycle with every
// pipeline full: pipelines x ops/item x items/cycle (8 x 3 x 1 = 24
// for the 1-D PDF).
func (d Design) IdealThroughputProc() float64 {
	return float64(d.Pipelines) * float64(d.OpsPerItem()) * float64(d.ItemsPerCycle)
}

// WorksheetThroughputProc returns the derated operations-per-cycle a
// RAT worksheet should carry (24 x 20/24 = 20 for the 1-D PDF).
func (d Design) WorksheetThroughputProc() float64 {
	if d.Derating == 0 {
		return d.IdealThroughputProc()
	}
	return d.IdealThroughputProc() * d.Derating
}

// ItemCyclesPerElement returns how many issue slots one element
// occupies in one pipeline: the items are divided among the pipelines
// and retire ItemsPerCycle per cycle.
func (d Design) ItemCyclesPerElement() int64 {
	perPipe := (d.ItemsPerElement + d.Pipelines - 1) / d.Pipelines
	return int64((perPipe + d.ItemsPerCycle - 1) / d.ItemsPerCycle)
}

// CyclesForBatch returns the cycle-accurate execution time of one
// batch of n elements: fill the pipeline once, then per element the
// item slots plus the inter-element stall, plus fixed batch control.
// This is the timing model the simulated platform executes; with
// honest stall and overhead figures it lands where the paper's
// measured hardware landed (20850 cycles per 512-element 1-D PDF batch
// = 1.39E-4 s at 150 MHz).
func (d Design) CyclesForBatch(n int) int64 {
	if n <= 0 {
		return int64(d.BatchOverhead)
	}
	perElement := d.ItemCyclesPerElement() + int64(d.ElementStall)
	return int64(d.BatchOverhead) + int64(d.PipelineDepth) + int64(n)*perElement
}

// EffectiveThroughputProc returns the operations per cycle the design
// actually sustains on a batch of n elements — total useful operations
// divided by modelled cycles. It is always below IdealThroughputProc
// for finite batches; comparing it with the worksheet value shows how
// conservative (or optimistic) the estimate was.
func (d Design) EffectiveThroughputProc(n int) float64 {
	cycles := d.CyclesForBatch(n)
	if cycles == 0 {
		return 0
	}
	return float64(n) * d.OpsPerElement() / float64(cycles)
}

// ResourceDemand estimates the design's total demand on a device:
// every pipeline's operator units, the per-item running state, the I/O
// buffering for a batch of n elements (doubled when double-buffered),
// and the fixed platform wrapper.
func (d Design) ResourceDemand(dev resource.Device, batchElements int, doubleBuffered bool) (resource.Demand, error) {
	if err := d.Validate(); err != nil {
		return resource.Demand{}, err
	}
	var perPipe resource.Demand
	var datapathBits int
	for _, u := range d.Units {
		c, err := resource.OperatorCost(dev, u.Op, u.Width)
		if err != nil {
			return resource.Demand{}, fmt.Errorf("%s: %w", d.Name, err)
		}
		perPipe = perPipe.Add(c)
		datapathBits += u.Width
	}

	// Pipeline registering and control: every stage latches roughly
	// the datapath width, and each pipeline carries a small FSM.
	// This is where most of a real design's logic goes — operator
	// cores alone grossly undercount slices.
	regBits := d.PipelineDepth * datapathBits
	if dev.Vendor == resource.Altera {
		perPipe.Logic += regBits + 2*pipelineControlLogic
	} else {
		perPipe.Logic += regBits/2 + pipelineControlLogic
	}
	total := perPipe.Scale(d.Pipelines)
	total.Logic += globalControlLogic

	// Running state: ItemsPerElement accumulators of StateBits,
	// spread across the pipelines; held in BRAM when large.
	if d.StateBits > 0 {
		stateBits := int64(d.ItemsPerElement) * int64(d.StateBits)
		total = total.Add(resource.BufferDemand(dev, (stateBits+7)/8))
	}

	// I/O buffering for one batch.
	if d.ElementBits > 0 && batchElements > 0 {
		bufBytes := int64(batchElements) * int64(d.ElementBits+7) / 8
		if doubleBuffered {
			bufBytes *= 2
		}
		total = total.Add(resource.BufferDemand(dev, bufBytes))
	}

	total = total.Add(resource.WrapperDemand(dev))
	return total, nil
}

// Describe renders a human-readable architecture summary, the textual
// equivalent of the paper's Figure 3.
func (d Design) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", d.Name)
	fmt.Fprintf(&b, "  %d parallel pipelines, depth %d cycles\n", d.Pipelines, d.PipelineDepth)
	fmt.Fprintf(&b, "  datapath per pipeline:")
	for _, u := range d.Units {
		fmt.Fprintf(&b, " %s(%d)", u.Op, u.Width)
	}
	fmt.Fprintf(&b, "\n  %d items per element, %d item(s)/cycle per pipeline\n",
		d.ItemsPerElement, d.ItemsPerCycle)
	fmt.Fprintf(&b, "  N_ops/element = %.0f, ideal throughput = %.0f ops/cycle",
		d.OpsPerElement(), d.IdealThroughputProc())
	if d.Derating > 0 && d.Derating < 1 {
		fmt.Fprintf(&b, " (worksheet: %.0f after %.0f%% derating)",
			d.WorksheetThroughputProc(), (1-d.Derating)*100)
	}
	b.WriteByte('\n')
	return b.String()
}
