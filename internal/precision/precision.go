// Package precision implements the RAT numerical-precision test
// (Section 3.2 of the paper): given candidate number formats for a
// kernel, measure each candidate's error against a floating-point
// reference, check it against the application's tolerance, and pick
// the format that spends the least hardware — the procedure behind the
// 1-D PDF study's choice of 18-bit fixed point ("the maximum error
// percentage was only ~2% ... 18-bit fixed point was chosen so that
// only one Xilinx 18x18 multiply-accumulate unit would be needed per
// multiplication. Though slightly smaller bitwidths would have also
// possessed reasonable error constraints, no performance gains or
// appreciable resource savings would have been achieved.").
//
// The package does not invent a formal error calculus — the paper
// explicitly scopes formal methods out of RAT and defers to the
// bit-width literature — but it provides the practical pieces: worst-
// case quantization bounds for sanity checks, empirical kernel-error
// measurement hooks, a minimum-width search, and the cost-aware
// recommendation rule.
package precision

import (
	"errors"
	"fmt"
	"math"

	"github.com/chrec/rat/internal/fixed"
	"github.com/chrec/rat/internal/resource"
)

// QuantizationBound returns the worst-case error of quantizing one
// in-range value into format f under the given rounding mode: one
// quantization step for truncation, half a step for the nearest modes.
func QuantizationBound(f fixed.Format, rm fixed.RoundMode) float64 {
	if rm == fixed.Truncate {
		return f.Eps()
	}
	return f.Eps() / 2
}

// AccumulationBound returns a worst-case bound on the error of summing
// n values each carrying at most QuantizationBound of input error:
// the per-term bounds add linearly. Truncation's one-sided error makes
// this bound tight in practice; nearest rounding typically does far
// better (random-walk growth), which is exactly why measured errors
// beat analytic bounds and the paper prefers empirical evaluation.
func AccumulationBound(f fixed.Format, rm fixed.RoundMode, n int) float64 {
	return float64(n) * QuantizationBound(f, rm)
}

// Candidate is one number-format option in a trade study: a label
// ("18-bit fixed"), the measured maximum error of the kernel under
// that format, and the per-multiplication resource cost on the target
// device.
type Candidate struct {
	Label    string
	Width    int // datapath bits; 0 for floating point
	MaxError float64
	MulCost  resource.Demand
}

// ErrUnrealizable is returned when no candidate meets the error
// tolerance — the "minimum precision unrealizable" exit arc of the
// Figure 1 methodology flow.
var ErrUnrealizable = errors.New("precision: no candidate meets the error tolerance")

// costRank orders demands by the paper's criterion: dedicated
// multiplier units first (the scarce, scalability-limiting resource),
// then memory, then logic.
func costRank(d resource.Demand) [3]int {
	return [3]int{d.DSP, d.BRAM, d.Logic}
}

func lessCost(a, b resource.Demand) bool {
	ra, rb := costRank(a), costRank(b)
	for i := range ra {
		if ra[i] != rb[i] {
			return ra[i] < rb[i]
		}
	}
	return false
}

// Recommend applies the Section 4.2 decision rule to a slate of
// candidates: discard those whose measured error exceeds tol; among
// the survivors find the cheapest resource cost; among equally cheap
// survivors prefer the widest datapath (extra precision that costs
// nothing). It returns the chosen candidate and a human-readable
// justification trail.
func Recommend(cands []Candidate, tol float64) (Candidate, []string, error) {
	if tol <= 0 {
		return Candidate{}, nil, fmt.Errorf("precision: tolerance must be positive (got %g)", tol)
	}
	var notes []string
	var qualifying []Candidate
	for _, c := range cands {
		if c.MaxError <= tol {
			qualifying = append(qualifying, c)
		} else {
			notes = append(notes, fmt.Sprintf("%s rejected: max error %.3g exceeds tolerance %.3g", c.Label, c.MaxError, tol))
		}
	}
	if len(qualifying) == 0 {
		return Candidate{}, notes, fmt.Errorf("%w (tolerance %.3g, %d candidates)", ErrUnrealizable, tol, len(cands))
	}
	best := qualifying[0]
	for _, c := range qualifying[1:] {
		switch {
		case lessCost(c.MulCost, best.MulCost):
			best = c
		case !lessCost(best.MulCost, c.MulCost) && c.Width > best.Width:
			// Equal cost: take the wider datapath.
			best = c
		}
	}
	notes = append(notes, fmt.Sprintf("%s chosen: max error %.3g within tolerance %.3g at minimum multiplier cost (%d DSP units per multiply)",
		best.Label, best.MaxError, tol, best.MulCost.DSP))
	for _, c := range qualifying {
		if c.Label != best.Label && c.Width < best.Width {
			notes = append(notes, fmt.Sprintf("%s offers no resource savings over %s", c.Label, best.Label))
		}
	}
	return best, notes, nil
}

// MinWidth searches [lo, hi] for the smallest datapath width whose
// measured error meets tol, assuming error is non-increasing in width
// (binary search; the assumption holds for quantization- and
// table-limited kernels). eval returns the kernel's maximum error at a
// width. It returns ErrUnrealizable when even hi misses the tolerance.
func MinWidth(eval func(width int) (float64, error), lo, hi int, tol float64) (int, error) {
	if lo > hi {
		return 0, fmt.Errorf("precision: empty width range [%d, %d]", lo, hi)
	}
	if tol <= 0 {
		return 0, fmt.Errorf("precision: tolerance must be positive (got %g)", tol)
	}
	eHi, err := eval(hi)
	if err != nil {
		return 0, err
	}
	if eHi > tol {
		return 0, fmt.Errorf("%w: error %.3g at the widest format (%d bits)", ErrUnrealizable, eHi, hi)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		e, err := eval(mid)
		if err != nil {
			return 0, err
		}
		if e <= tol {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// FixedCandidate builds a Candidate for a fixed-point width on a
// device, measuring the kernel error with eval and pricing one WxW
// multiply via the device cost model.
func FixedCandidate(dev resource.Device, width int, eval func(width int) (float64, error)) (Candidate, error) {
	e, err := eval(width)
	if err != nil {
		return Candidate{}, err
	}
	cost, err := resource.OperatorCost(dev, resource.OpMul, width)
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{
		Label:    fmt.Sprintf("%d-bit fixed", width),
		Width:    width,
		MaxError: e,
		MulCost:  cost,
	}, nil
}

// Float32Candidate builds the floating-point comparison row: a
// single-precision multiply on these families occupies several DSP
// units (the 24-bit mantissa product) plus normalization logic, priced
// by the device cost model's OpFMul class.
func Float32Candidate(dev resource.Device, maxError float64) Candidate {
	cost, err := resource.OperatorCost(dev, resource.OpFMul, 32)
	if err != nil {
		//rat:allow-panic width 32 is always in the cost model's range; failure means the model tables are corrupted
		panic(err)
	}
	return Candidate{Label: "32-bit float", Width: 0, MaxError: maxError, MulCost: cost}
}

// RelativeError is a convenience for eval hooks: the maximum absolute
// deviation of got from ref, normalized by the largest |ref| value.
func RelativeError(ref, got []float64) float64 {
	var peak, worst float64
	for _, v := range ref {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return 0
	}
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d > worst {
			worst = d
		}
	}
	return worst / peak
}
