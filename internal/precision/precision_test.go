package precision_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/fixed"
	"github.com/chrec/rat/internal/precision"
	"github.com/chrec/rat/internal/resource"
)

func TestQuantizationBounds(t *testing.T) {
	f := fixed.Q(2, 16)
	if got := precision.QuantizationBound(f, fixed.Truncate); got != f.Eps() {
		t.Errorf("truncate bound = %g, want eps", got)
	}
	if got := precision.QuantizationBound(f, fixed.Nearest); got != f.Eps()/2 {
		t.Errorf("nearest bound = %g, want eps/2", got)
	}
	if got := precision.AccumulationBound(f, fixed.Truncate, 100); got != 100*f.Eps() {
		t.Errorf("accumulation bound = %g", got)
	}
	// The bounds are real bounds: quantize many values and check.
	for i := 0; i < 1000; i++ {
		x := -1.9 + 3.8*float64(i)/999
		v, _ := fixed.FromFloat(x, f, fixed.Nearest, fixed.Saturate)
		if e := math.Abs(v.Float() - x); e > precision.QuantizationBound(f, fixed.Nearest)+1e-18 {
			t.Fatalf("error %g exceeds bound at %g", e, x)
		}
	}
}

// pdf1dEval builds the kernel-error hook the trade study uses: the 1-D
// PDF estimate at a given datapath width against the float64 reference.
func pdf1dEval(t *testing.T) (func(int) (float64, error), []float64) {
	t.Helper()
	samples := pdf1d.GenerateSamples(4096, 3)
	bins := pdf1d.BinCenters(pdf1d.Bins)
	p := pdf1d.DefaultParams()
	ref := pdf1d.EstimateFloat(samples, bins, p)
	return func(width int) (float64, error) {
		cfg, err := pdf1d.ConfigForWidth(width)
		if err != nil {
			return 0, err
		}
		got := pdf1d.EstimateFixed(samples, bins, p, cfg)
		return precision.RelativeError(ref, got), nil
	}, ref
}

// TestTradeStudyReproducesSection42: the 18/32-bit fixed and 32-bit
// float comparison of the walkthrough, ending in the paper's decision:
// 18-bit fixed, because it meets the ~2-3% tolerance with one MAC unit
// per multiply and narrower widths save nothing.
func TestTradeStudyReproducesSection42(t *testing.T) {
	eval, _ := pdf1dEval(t)
	dev := resource.VirtexLX100

	c18, err := precision.FixedCandidate(dev, 18, eval)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := precision.FixedCandidate(dev, 16, eval)
	if err != nil {
		t.Fatal(err)
	}
	c32, err := precision.FixedCandidate(dev, 32, eval)
	if err != nil {
		t.Fatal(err)
	}
	cFloat := precision.Float32Candidate(dev, 1e-6)

	if c18.MulCost.DSP != 1 {
		t.Errorf("18-bit multiply costs %d DSPs, want 1", c18.MulCost.DSP)
	}
	if c32.MulCost.DSP != 2 {
		t.Errorf("32-bit multiply costs %d DSPs, want 2 (the paper's Virtex-4 rule)", c32.MulCost.DSP)
	}
	if c18.MaxError < 0.005 || c18.MaxError > 0.04 {
		t.Errorf("18-bit error = %.4f, want ~0.02", c18.MaxError)
	}

	tol := 0.03
	chosen, notes, err := precision.Recommend([]precision.Candidate{c16, c18, c32, cFloat}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Label != "18-bit fixed" {
		t.Errorf("chose %q, the paper chose 18-bit fixed\nnotes: %v", chosen.Label, notes)
	}
	if len(notes) == 0 {
		t.Error("recommendation must explain itself")
	}
}

func TestRecommendUnrealizable(t *testing.T) {
	cands := []precision.Candidate{
		{Label: "8-bit", Width: 8, MaxError: 0.5, MulCost: resource.Demand{DSP: 1}},
	}
	_, notes, err := precision.Recommend(cands, 0.01)
	if !errors.Is(err, precision.ErrUnrealizable) {
		t.Errorf("error = %v, want ErrUnrealizable", err)
	}
	if len(notes) != 1 {
		t.Errorf("expected a rejection note, got %v", notes)
	}
	if _, _, err := precision.Recommend(cands, 0); err == nil || errors.Is(err, precision.ErrUnrealizable) {
		t.Errorf("zero tolerance must be an argument error, got %v", err)
	}
}

func TestRecommendPrefersWiderAtEqualCost(t *testing.T) {
	cands := []precision.Candidate{
		{Label: "14-bit", Width: 14, MaxError: 0.02, MulCost: resource.Demand{DSP: 1}},
		{Label: "18-bit", Width: 18, MaxError: 0.01, MulCost: resource.Demand{DSP: 1}},
		{Label: "32-bit", Width: 32, MaxError: 0.001, MulCost: resource.Demand{DSP: 2}},
	}
	chosen, _, err := precision.Recommend(cands, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Label != "18-bit" {
		t.Errorf("chose %q, want the widest minimum-cost candidate (18-bit)", chosen.Label)
	}
}

func TestRecommendCostOrdering(t *testing.T) {
	// DSP dominates, then BRAM, then logic.
	cands := []precision.Candidate{
		{Label: "a", Width: 20, MaxError: 0.01, MulCost: resource.Demand{DSP: 2, Logic: 0}},
		{Label: "b", Width: 16, MaxError: 0.01, MulCost: resource.Demand{DSP: 1, Logic: 9999}},
	}
	chosen, _, err := precision.Recommend(cands, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if chosen.Label != "b" {
		t.Errorf("chose %q; DSP count must outrank logic", chosen.Label)
	}
}

// TestMinWidthSearch: binary search over the pdf1d kernel finds the
// smallest width meeting a 2% tolerance — the boundary sits where the
// Gaussian table gains address bits (between 16 and 18 bits) — and the
// next narrower width misses it.
func TestMinWidthSearch(t *testing.T) {
	eval, _ := pdf1dEval(t)
	tol := 0.02
	w, err := precision.MinWidth(eval, 10, 32, tol)
	if err != nil {
		t.Fatal(err)
	}
	if w < 16 || w > 18 {
		t.Errorf("minimum width = %d, expected in [16, 18]", w)
	}
	below, err := eval(w - 1)
	if err != nil {
		t.Fatal(err)
	}
	if below <= tol {
		t.Errorf("width %d also meets tolerance (%.4f); search missed the minimum", w-1, below)
	}
	at, err := eval(w)
	if err != nil {
		t.Fatal(err)
	}
	if at > tol {
		t.Errorf("returned width %d misses tolerance: %.4f", w, at)
	}
}

func TestMinWidthUnrealizable(t *testing.T) {
	eval := func(int) (float64, error) { return 0.5, nil }
	if _, err := precision.MinWidth(eval, 10, 32, 0.01); !errors.Is(err, precision.ErrUnrealizable) {
		t.Errorf("error = %v, want ErrUnrealizable", err)
	}
	if _, err := precision.MinWidth(eval, 20, 10, 0.01); err == nil {
		t.Error("empty range must error")
	}
	if _, err := precision.MinWidth(eval, 10, 32, 0); err == nil {
		t.Error("zero tolerance must error")
	}
	boom := func(int) (float64, error) { return 0, errors.New("kernel exploded") }
	if _, err := precision.MinWidth(boom, 10, 32, 0.5); err == nil {
		t.Error("eval errors must propagate")
	}
}

func TestMinWidthPropagatesMidEvalErrors(t *testing.T) {
	calls := 0
	eval := func(w int) (float64, error) {
		calls++
		if calls > 1 {
			return 0, errors.New("second call fails")
		}
		return 0, nil // hi qualifies
	}
	if _, err := precision.MinWidth(eval, 10, 32, 0.5); err == nil {
		t.Error("mid-search eval errors must propagate")
	}
}

func TestFixedCandidatePropagatesErrors(t *testing.T) {
	bad := func(int) (float64, error) { return 0, errors.New("nope") }
	if _, err := precision.FixedCandidate(resource.VirtexLX100, 18, bad); err == nil {
		t.Error("eval error must propagate")
	}
	ok := func(int) (float64, error) { return 0.01, nil }
	if _, err := precision.FixedCandidate(resource.VirtexLX100, 99, ok); err == nil {
		t.Error("invalid width must error via the cost model")
	}
}

func TestRelativeError(t *testing.T) {
	if got := precision.RelativeError([]float64{0, 0}, []float64{0, 0}); got != 0 {
		t.Errorf("zero ref = %g", got)
	}
	if got := precision.RelativeError([]float64{-4, 2}, []float64{-4.4, 2}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %g, want 0.1 (peak is |-4|)", got)
	}
}
