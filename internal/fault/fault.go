// Package fault models the runtime misbehaviour of an RC platform
// that RAT's analytic equations (and the paper's clean testbed runs)
// abstract away: transfer CRC errors that force retries, DMA timeouts,
// size- and age-dependent sustained-bandwidth degradation, transient
// kernel upsets that force recomputation, and — for multi-FPGA
// systems — whole-node dropout. Package rcsim threads a Plan through
// its discrete-event timelines so retries, backoff and failover are
// charged in simulated time, answering the question the analytic
// model cannot: how far do the paper's speedup predictions degrade
// when the platform misbehaves, and do recovery policies win them
// back? See docs/FAULTS.md.
//
// # Determinism
//
// Every random decision is a pure function of (Plan.Seed, fault
// stream, device, iteration, attempt) — a counter-free hash, not a
// stateful PRNG — so the injected fault set does not depend on event
// dispatch order, and the same scenario with the same seed yields a
// bit-identical timeline and event log. A useful corollary: for a
// fixed seed the set of faulting attempts grows monotonically with
// the rate (an attempt faults iff its fixed uniform draw falls below
// the rate), so sweeping a rate upward can only add fault work.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/chrec/rat/internal/sim"
)

// Kind names an injected fault, as it appears in telemetry event
// details and error messages.
type Kind string

const (
	// None means the attempt completes cleanly.
	None Kind = ""
	// CRCError is a transfer that completes on the wire but fails its
	// integrity check: the full transfer time is wasted and the
	// transfer must be retried.
	CRCError Kind = "crc-error"
	// DMATimeout is a transfer whose DMA engine hangs: the host waits
	// out the Plan's DMAStall, aborts, and retries.
	DMATimeout Kind = "dma-timeout"
	// KernelUpset is a transient in-fabric upset detected after a
	// kernel execution: the computed block is untrusted and must be
	// recomputed from the (still-buffered) input.
	KernelUpset Kind = "kernel-upset"
	// NodeDropout is the permanent loss of one FPGA in a multi-device
	// run; recovery requires the Policy's failover.
	NodeDropout Kind = "node-dropout"
)

// Op identifies the operation class a fault decision applies to.
// Distinct ops draw from distinct hash streams, so e.g. write and
// read transfers of the same iteration fault independently.
type Op int

const (
	OpWrite Op = iota
	OpRead
	OpCompute
	OpNode
)

// ErrBadPlan tags Plan/Policy validation failures.
var ErrBadPlan = errors.New("fault: invalid plan")

// Plan is a seed-driven description of how the platform misbehaves.
// The zero value injects nothing. Rates are probabilities per attempt
// (transfers, kernel executions) or per device-iteration (dropout).
type Plan struct {
	// Seed selects the deterministic fault pattern. Two runs of the
	// same scenario with the same seed see identical faults.
	Seed uint64

	// CRC is the probability that a transfer attempt completes but
	// fails its integrity check (full transfer time wasted).
	CRC float64
	// DMA is the probability that a transfer attempt hangs until the
	// DMAStall timeout expires.
	DMA float64
	// DMAStall is the simulated time the host waits before declaring
	// a hung DMA dead. Zero defaults to 1 ms.
	DMAStall sim.Time
	// Upset is the probability that a kernel execution suffers a
	// transient upset and must recompute its block.
	Upset float64
	// Dropout is the per-device, per-iteration probability that an
	// FPGA drops out of a multi-device run permanently.
	Dropout float64

	// AgeSlope models sustained-bandwidth decay over the run (driver
	// queue aging, thermal throttling): transfer i is slowed by a
	// factor 1 + AgeSlope*i.
	AgeSlope float64
	// SizeKnee and SizeFactor model large-transfer degradation:
	// transfers of at least SizeKnee bytes are additionally slowed by
	// SizeFactor. SizeKnee 0 disables; SizeFactor 0 means 1.
	SizeKnee   int64
	SizeFactor float64

	// Policy governs recovery. The zero value means DefaultPolicy.
	Policy Policy
}

// Policy describes how the simulated host reacts to faults.
type Policy struct {
	// Retries is the maximum number of retry attempts per operation
	// beyond the first try. Exhausting it fails the run.
	Retries int
	// Backoff is the simulated wait before the first retry of an
	// operation; retry k waits Backoff * Growth^(k-1).
	Backoff sim.Time
	// Growth is the exponential backoff factor. Zero means 2.
	Growth float64
	// Failover, in multi-FPGA runs, reroutes a dropped node's
	// remaining sub-blocks to the lowest-numbered surviving device.
	// Without it a dropout fails the run.
	Failover bool
	// FailoverDelay is the simulated rebalance stall charged per
	// dropout before the surviving device takes over. Zero defaults
	// to 1 ms.
	FailoverDelay sim.Time
	// FailFast aborts the run on the first fault instead of
	// retrying — the "measure the cliff" policy.
	FailFast bool
}

// DefaultPolicy is the recovery the CLIs and a zero-valued
// Plan.Policy use: three retries with 10 us exponential backoff, and
// failover with a 1 ms rebalance stall.
func DefaultPolicy() Policy {
	return Policy{
		Retries:       3,
		Backoff:       10 * sim.Microsecond,
		Growth:        2,
		Failover:      true,
		FailoverDelay: sim.Millisecond,
	}
}

// BackoffFor returns the simulated wait before retry attempt k
// (1-based): Backoff * Growth^(k-1), rounded to the picosecond.
func (p Policy) BackoffFor(k int) sim.Time {
	if p.Backoff <= 0 || k < 1 {
		return 0
	}
	g := p.Growth
	if g == 0 {
		g = 1
	}
	return sim.Time(math.Round(float64(p.Backoff) * math.Pow(g, float64(k-1))))
}

// Validate checks the policy.
func (p Policy) Validate() error {
	switch {
	case p.Retries < 0:
		return fmt.Errorf("%w: retries must be non-negative (got %d)", ErrBadPlan, p.Retries)
	case p.Backoff < 0:
		return fmt.Errorf("%w: backoff must be non-negative (got %v)", ErrBadPlan, p.Backoff)
	case p.Growth < 0 || (p.Growth > 0 && p.Growth < 1):
		return fmt.Errorf("%w: backoff growth must be >= 1 (got %g)", ErrBadPlan, p.Growth)
	case p.FailoverDelay < 0:
		return fmt.Errorf("%w: failover delay must be non-negative (got %v)", ErrBadPlan, p.FailoverDelay)
	}
	return nil
}

// Validate checks the plan's rates and shapes.
func (pl Plan) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"crc", pl.CRC}, {"dma", pl.DMA}, {"upset", pl.Upset}, {"dropout", pl.Dropout},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("%w: %s rate must be in [0,1] (got %g)", ErrBadPlan, r.name, r.v)
		}
	}
	if pl.CRC+pl.DMA > 1 {
		return fmt.Errorf("%w: crc+dma rates exceed 1 (%g)", ErrBadPlan, pl.CRC+pl.DMA)
	}
	switch {
	case pl.DMAStall < 0:
		return fmt.Errorf("%w: dma stall must be non-negative (got %v)", ErrBadPlan, pl.DMAStall)
	case pl.AgeSlope < 0 || math.IsNaN(pl.AgeSlope):
		return fmt.Errorf("%w: age slope must be non-negative (got %g)", ErrBadPlan, pl.AgeSlope)
	case pl.SizeKnee < 0:
		return fmt.Errorf("%w: size knee must be non-negative (got %d)", ErrBadPlan, pl.SizeKnee)
	case pl.SizeFactor < 0 || (pl.SizeFactor > 0 && pl.SizeFactor < 1):
		return fmt.Errorf("%w: size factor must be >= 1 (got %g)", ErrBadPlan, pl.SizeFactor)
	}
	return pl.Policy.Validate()
}

// Enabled reports whether the plan injects anything at all. A nil or
// disabled plan lets rcsim skip fault handling entirely, guaranteeing
// the fault-free timeline bit for bit.
func (pl *Plan) Enabled() bool {
	if pl == nil {
		return false
	}
	return pl.CRC > 0 || pl.DMA > 0 || pl.Upset > 0 || pl.Dropout > 0 ||
		pl.AgeSlope > 0 || (pl.SizeKnee > 0 && pl.SizeFactor > 1)
}

// normalized returns a copy with documented defaults filled in.
func (pl Plan) normalized() Plan {
	if pl.Policy == (Policy{}) {
		pl.Policy = DefaultPolicy()
	}
	if pl.Policy.Growth == 0 {
		pl.Policy.Growth = 2
	}
	if pl.Policy.FailoverDelay == 0 {
		pl.Policy.FailoverDelay = sim.Millisecond
	}
	if pl.DMAStall == 0 {
		pl.DMAStall = sim.Millisecond
	}
	if pl.SizeFactor == 0 {
		pl.SizeFactor = 1
	}
	return pl
}

// Injector turns a Plan into per-attempt decisions. A nil *Injector
// is valid and injects nothing; every method is nil-safe, so
// simulation code can consult it unconditionally.
type Injector struct {
	plan Plan
}

// NewInjector validates and arms a plan. It returns (nil, nil) for a
// nil or disabled plan — the caller keeps the exact fault-free path.
func NewInjector(pl *Plan) (*Injector, error) {
	if !pl.Enabled() {
		if pl != nil {
			if err := pl.Validate(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: pl.normalized()}, nil
}

// Plan returns the armed plan with defaults applied; the zero Plan
// when the injector is nil.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Policy returns the armed recovery policy (zero when nil).
func (in *Injector) Policy() Policy {
	if in == nil {
		return Policy{}
	}
	return in.plan.Policy
}

// TransferFault decides the fate of one transfer attempt: None,
// CRCError or DMATimeout. attempt is 0-based.
func (in *Injector) TransferFault(op Op, device, iter, attempt int) Kind {
	if in == nil || (in.plan.CRC == 0 && in.plan.DMA == 0) {
		return None
	}
	u := in.draw(op, device, iter, attempt)
	switch {
	case u < in.plan.CRC:
		return CRCError
	case u < in.plan.CRC+in.plan.DMA:
		return DMATimeout
	}
	return None
}

// KernelFault decides whether kernel execution attempt suffers a
// transient upset. attempt is 0-based.
func (in *Injector) KernelFault(device, iter, attempt int) Kind {
	if in == nil || in.plan.Upset == 0 {
		return None
	}
	if in.draw(OpCompute, device, iter, attempt) < in.plan.Upset {
		return KernelUpset
	}
	return None
}

// NodeDropout decides whether the device drops out at the start of
// the given iteration.
func (in *Injector) NodeDropout(device, iter int) bool {
	if in == nil || in.plan.Dropout == 0 {
		return false
	}
	return in.draw(OpNode, device, iter, 0) < in.plan.Dropout
}

// Degrade applies the plan's bandwidth-degradation model to a nominal
// transfer duration: factor (1 + AgeSlope*iter), times SizeFactor for
// transfers at or above SizeKnee. It returns the degraded duration
// (identical when no degradation applies).
func (in *Injector) Degrade(nominal sim.Time, bytes int64, iter int) sim.Time {
	if in == nil {
		return nominal
	}
	factor := 1 + in.plan.AgeSlope*float64(iter)
	if in.plan.SizeKnee > 0 && bytes >= in.plan.SizeKnee {
		factor *= in.plan.SizeFactor
	}
	if factor == 1 {
		return nominal
	}
	return sim.Time(math.Round(float64(nominal) * factor))
}

// draw returns the attempt's fixed uniform deviate in [0, 1).
func (in *Injector) draw(op Op, device, iter, attempt int) float64 {
	h := mix(in.plan.Seed, uint64(op)+1, uint64(device)+1, uint64(iter)+1, uint64(attempt)+1)
	return float64(h>>11) / (1 << 53)
}

// mix folds the values through a splitmix64-style finalizer. It is a
// stateless hash: the result depends only on the inputs, never on
// call order.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= splitmix(v + 0x9E3779B97F4A7C15)
		h = splitmix(h)
	}
	return h
}

func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ParseRates parses the CLI fault-rate spec: comma-separated
// key=value pairs with keys crc, dma, upset, dropout (probabilities),
// dma-stall (duration, e.g. 500us), age-slope (per-iteration slowdown
// fraction), size-knee (bytes) and size-factor (multiplier >= 1).
// Example: "crc=0.01,dma=0.002,upset=0.001,dropout=0.0005".
// Seed and policy are set separately. The empty spec is invalid — use
// no plan at all for a fault-free run.
func ParseRates(spec string) (Plan, error) {
	var pl Plan
	if strings.TrimSpace(spec) == "" {
		return Plan{}, fmt.Errorf("%w: empty fault spec", ErrBadPlan)
	}
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return Plan{}, fmt.Errorf("%w: fault spec entry %q is not key=value", ErrBadPlan, item)
		}
		var err error
		switch key {
		case "crc":
			pl.CRC, err = parseRate(key, val)
		case "dma":
			pl.DMA, err = parseRate(key, val)
		case "upset":
			pl.Upset, err = parseRate(key, val)
		case "dropout":
			pl.Dropout, err = parseRate(key, val)
		case "dma-stall":
			pl.DMAStall, err = parseSimDuration(key, val)
		case "age-slope":
			pl.AgeSlope, err = parseNonNegative(key, val)
		case "size-knee":
			pl.SizeKnee, err = strconv.ParseInt(val, 10, 64)
			if err != nil || pl.SizeKnee < 0 {
				err = fmt.Errorf("%w: size-knee %q is not a non-negative byte count", ErrBadPlan, val)
			}
		case "size-factor":
			pl.SizeFactor, err = parseNonNegative(key, val)
		default:
			return Plan{}, fmt.Errorf("%w: unknown fault spec key %q (want %s)", ErrBadPlan, key,
				strings.Join(rateKeys(), ", "))
		}
		if err != nil {
			return Plan{}, err
		}
	}
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	return pl, nil
}

func rateKeys() []string {
	ks := []string{"crc", "dma", "upset", "dropout", "dma-stall", "age-slope", "size-knee", "size-factor"}
	sort.Strings(ks)
	return ks
}

// ParsePolicy parses the CLI recovery-policy spec: comma-separated
// items among retries=N, backoff=DUR, growth=F, failover,
// no-failover, failover-delay=DUR and failfast. The empty spec
// returns DefaultPolicy. Example: "retries=5,backoff=20us,growth=2".
func ParsePolicy(spec string) (Policy, error) {
	pol := DefaultPolicy()
	if strings.TrimSpace(spec) == "" {
		return pol, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		key, val, hasVal := strings.Cut(item, "=")
		var err error
		switch {
		case key == "retries" && hasVal:
			pol.Retries, err = strconv.Atoi(val)
			if err != nil {
				err = fmt.Errorf("%w: retries %q is not an integer", ErrBadPlan, val)
			}
		case key == "backoff" && hasVal:
			pol.Backoff, err = parseSimDuration(key, val)
		case key == "growth" && hasVal:
			pol.Growth, err = parseNonNegative(key, val)
		case key == "failover-delay" && hasVal:
			pol.FailoverDelay, err = parseSimDuration(key, val)
		case item == "failover":
			pol.Failover = true
		case item == "no-failover":
			pol.Failover = false
		case item == "failfast":
			pol.FailFast = true
		default:
			return Policy{}, fmt.Errorf("%w: unknown policy spec item %q", ErrBadPlan, item)
		}
		if err != nil {
			return Policy{}, err
		}
	}
	if err := pol.Validate(); err != nil {
		return Policy{}, err
	}
	return pol, nil
}

func parseRate(key, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || v < 0 || v > 1 || math.IsNaN(v) {
		return 0, fmt.Errorf("%w: %s rate %q is not a probability in [0,1]", ErrBadPlan, key, val)
	}
	return v, nil
}

func parseNonNegative(key, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: %s %q is not a non-negative number", ErrBadPlan, key, val)
	}
	return v, nil
}

// parseSimDuration converts wall-style duration syntax ("10us",
// "1ms") into simulated time.
func parseSimDuration(key, val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%w: %s %q is not a non-negative duration", ErrBadPlan, key, val)
	}
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond, nil
}
