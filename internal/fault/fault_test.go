package fault_test

import (
	"errors"
	"math"
	"testing"

	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/sim"
)

func armed(t *testing.T, pl fault.Plan) *fault.Injector {
	t.Helper()
	in, err := fault.NewInjector(&pl)
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("plan did not arm an injector")
	}
	return in
}

func TestNilAndDisabledInjector(t *testing.T) {
	for _, pl := range []*fault.Plan{nil, {}, {Seed: 7}} {
		in, err := fault.NewInjector(pl)
		if err != nil {
			t.Fatal(err)
		}
		if in != nil {
			t.Fatalf("plan %+v must not arm an injector", pl)
		}
		// Nil-receiver methods must behave as "no fault".
		if k := in.TransferFault(fault.OpWrite, 0, 0, 0); k != fault.None {
			t.Errorf("nil injector transfer fault = %q", k)
		}
		if k := in.KernelFault(0, 0, 0); k != fault.None {
			t.Errorf("nil injector kernel fault = %q", k)
		}
		if in.NodeDropout(0, 0) {
			t.Error("nil injector dropped a node")
		}
		if d := in.Degrade(123, 1024, 5); d != 123 {
			t.Errorf("nil injector degraded a transfer: %v", d)
		}
	}
}

// TestDrawsAreOrderIndependent: decisions depend only on the
// coordinates, never on call order — the property the event-driven
// simulator's determinism rests on.
func TestDrawsAreOrderIndependent(t *testing.T) {
	pl := fault.Plan{Seed: 42, CRC: 0.3, DMA: 0.2, Upset: 0.25, Dropout: 0.1}
	a := armed(t, pl)
	b := armed(t, pl)
	type coord struct {
		op                 fault.Op
		dev, iter, attempt int
	}
	var coords []coord
	for dev := 0; dev < 3; dev++ {
		for iter := 0; iter < 20; iter++ {
			for att := 0; att < 4; att++ {
				coords = append(coords, coord{fault.OpWrite, dev, iter, att}, coord{fault.OpRead, dev, iter, att})
			}
		}
	}
	forward := make([]fault.Kind, len(coords))
	for i, c := range coords {
		forward[i] = a.TransferFault(c.op, c.dev, c.iter, c.attempt)
	}
	for i := len(coords) - 1; i >= 0; i-- {
		c := coords[i]
		if got := b.TransferFault(c.op, c.dev, c.iter, c.attempt); got != forward[i] {
			t.Fatalf("draw at %+v changed with call order: %q vs %q", c, got, forward[i])
		}
	}
}

// TestRatesAreMonotone: for a fixed seed, every attempt that faults
// at a lower rate still faults at a higher one.
func TestRatesAreMonotone(t *testing.T) {
	lo := armed(t, fault.Plan{Seed: 9, CRC: 0.05})
	hi := armed(t, fault.Plan{Seed: 9, CRC: 0.25})
	faultsLo, faultsHi := 0, 0
	for iter := 0; iter < 2000; iter++ {
		kLo := lo.TransferFault(fault.OpWrite, 0, iter, 0)
		kHi := hi.TransferFault(fault.OpWrite, 0, iter, 0)
		if kLo != fault.None {
			faultsLo++
			if kHi == fault.None {
				t.Fatalf("iter %d faults at rate 0.05 but not at 0.25", iter)
			}
		}
		if kHi != fault.None {
			faultsHi++
		}
	}
	if faultsLo == 0 || faultsHi <= faultsLo {
		t.Errorf("fault counts lo=%d hi=%d, want 0 < lo < hi", faultsLo, faultsHi)
	}
}

// TestRatesRoughlyCalibrated: empirical fault frequency lands near the
// configured probability.
func TestRatesRoughlyCalibrated(t *testing.T) {
	const rate, n = 0.2, 20000
	in := armed(t, fault.Plan{Seed: 3, CRC: rate})
	hits := 0
	for i := 0; i < n; i++ {
		if in.TransferFault(fault.OpWrite, 0, i, 0) == fault.CRCError {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-rate) > 0.02 {
		t.Errorf("empirical rate %.3f, want ~%.2f", got, rate)
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	in := armed(t, fault.Plan{Seed: 11, CRC: 0.5, Upset: 0.5})
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		w := in.TransferFault(fault.OpWrite, 0, i, 0) != fault.None
		r := in.TransferFault(fault.OpRead, 0, i, 0) != fault.None
		if w == r {
			same++
		}
	}
	if same == n || same == 0 {
		t.Errorf("write and read streams are correlated: %d/%d agree", same, n)
	}
}

func TestDegrade(t *testing.T) {
	in := armed(t, fault.Plan{Seed: 1, AgeSlope: 0.1, SizeKnee: 4096, SizeFactor: 2})
	nominal := sim.Time(1000)
	if got := in.Degrade(nominal, 100, 0); got != 1000 {
		t.Errorf("iter 0 small transfer degraded: %v", got)
	}
	if got := in.Degrade(nominal, 100, 10); got != 2000 {
		t.Errorf("age degradation = %v, want 2000 (factor 2 at iter 10)", got)
	}
	if got := in.Degrade(nominal, 8192, 0); got != 2000 {
		t.Errorf("size degradation = %v, want 2000", got)
	}
	if got := in.Degrade(nominal, 8192, 10); got != 4000 {
		t.Errorf("combined degradation = %v, want 4000", got)
	}
}

func TestBackoffGrowsExponentially(t *testing.T) {
	pol := fault.Policy{Retries: 5, Backoff: 10 * sim.Microsecond, Growth: 2}
	for k, want := range map[int]sim.Time{
		1: 10 * sim.Microsecond,
		2: 20 * sim.Microsecond,
		3: 40 * sim.Microsecond,
	} {
		if got := pol.BackoffFor(k); got != want {
			t.Errorf("BackoffFor(%d) = %v, want %v", k, got, want)
		}
	}
	if got := (fault.Policy{}).BackoffFor(1); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []fault.Plan{
		{CRC: -0.1},
		{CRC: 1.5},
		{DMA: math.NaN()},
		{CRC: 0.7, DMA: 0.7},
		{Upset: 2},
		{Dropout: -1},
		{CRC: 0.1, DMAStall: -1},
		{CRC: 0.1, AgeSlope: -0.5},
		{CRC: 0.1, SizeKnee: -4},
		{CRC: 0.1, SizeFactor: 0.5},
		{CRC: 0.1, Policy: fault.Policy{Retries: -1}},
		{CRC: 0.1, Policy: fault.Policy{Backoff: -1}},
		{CRC: 0.1, Policy: fault.Policy{Growth: 0.5}},
		{CRC: 0.1, Policy: fault.Policy{FailoverDelay: -1}},
	}
	for _, pl := range bad {
		pl := pl
		if _, err := fault.NewInjector(&pl); !errors.Is(err, fault.ErrBadPlan) {
			t.Errorf("plan %+v: error = %v, want ErrBadPlan", pl, err)
		}
	}
}

func TestNormalizedDefaults(t *testing.T) {
	in := armed(t, fault.Plan{Seed: 1, CRC: 0.1})
	pl := in.Plan()
	if pl.DMAStall != sim.Millisecond {
		t.Errorf("DMAStall default = %v, want 1ms", pl.DMAStall)
	}
	if pl.Policy != fault.DefaultPolicy() {
		t.Errorf("zero policy not defaulted: %+v", pl.Policy)
	}
	if !pl.Policy.Failover || pl.Policy.Retries != 3 {
		t.Errorf("default policy = %+v", pl.Policy)
	}
}

func TestParseRates(t *testing.T) {
	pl, err := fault.ParseRates("crc=0.01, dma=0.002,upset=0.001,dropout=0.0005,dma-stall=500us,age-slope=0.001,size-knee=65536,size-factor=1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.Plan{CRC: 0.01, DMA: 0.002, Upset: 0.001, Dropout: 0.0005,
		DMAStall: 500 * sim.Microsecond, AgeSlope: 0.001, SizeKnee: 65536, SizeFactor: 1.5}
	if pl != want {
		t.Errorf("ParseRates = %+v, want %+v", pl, want)
	}
	for _, spec := range []string{"", "crc", "crc=2", "crc=x", "warp=0.1", "dma-stall=-1ms", "size-knee=-2", "crc=0.6,dma=0.6"} {
		if _, err := fault.ParseRates(spec); !errors.Is(err, fault.ErrBadPlan) {
			t.Errorf("spec %q: error = %v, want ErrBadPlan", spec, err)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	pol, err := fault.ParsePolicy("retries=5,backoff=20us,growth=3,no-failover")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.DefaultPolicy()
	want.Retries, want.Backoff, want.Growth, want.Failover = 5, 20*sim.Microsecond, 3, false
	if pol != want {
		t.Errorf("ParsePolicy = %+v, want %+v", pol, want)
	}
	if pol, err := fault.ParsePolicy(""); err != nil || pol != fault.DefaultPolicy() {
		t.Errorf("empty policy = %+v, %v; want default", pol, err)
	}
	if pol, err := fault.ParsePolicy("failfast"); err != nil || !pol.FailFast {
		t.Errorf("failfast policy = %+v, %v", pol, err)
	}
	for _, spec := range []string{"retries", "retries=x", "growth=0.2", "backoff=-1us", "teleport"} {
		if _, err := fault.ParsePolicy(spec); !errors.Is(err, fault.ErrBadPlan) {
			t.Errorf("spec %q: error = %v, want ErrBadPlan", spec, err)
		}
	}
}
