package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	. "github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/server"
	"github.com/chrec/rat/internal/tenant"
	"github.com/chrec/rat/internal/worksheet"
)

func newTestPair(t *testing.T, cfg server.Config, opts ...Option) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL, opts...), ts
}

// TestClientPredictBitForBit: the typed client returns exactly what
// the local kernel computes, for all three paper case studies.
func TestClientPredictBitForBit(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	ctx := context.Background()
	for _, cs := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(cs)
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Predict(ctx, p)
		if err != nil {
			t.Fatalf("%s: %v", cs, err)
		}
		if got != want {
			t.Errorf("%s: client prediction differs from core.Predict", cs)
		}
	}
}

// TestClientPredictMultiBitForBit covers both topologies.
func TestClientPredictMultiBitForBit(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	ctx := context.Background()
	p := paper.MDParams()
	for _, cfg := range []core.MultiConfig{
		{Devices: 2, Topology: core.SharedChannel},
		{Devices: 4, Topology: core.IndependentChannels},
	} {
		want, err := core.PredictMulti(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.PredictMulti(ctx, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%+v: client multi-prediction differs from core.PredictMulti", cfg)
		}
	}
}

// TestClientPredictBatchBitForBit: element i of the batch equals the
// scalar prediction of worksheet i.
func TestClientPredictBatchBitForBit(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	ps := []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams(), paper.MDParams()}
	got, err := c.PredictBatch(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("got %d predictions for %d worksheets", len(got), len(ps))
	}
	for i, p := range ps {
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("batch element %d differs from core.Predict", i)
		}
	}
}

// TestClientExplore cross-checks a served exploration against a local
// explore.Run.
func TestClientExplore(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	req := ExploreRequest{
		Worksheet: worksheet.DocFromParams(paper.PDF1DParams()),
		ClocksMHz: []float64{75, 100, 150},
		TopK:      2,
	}
	got, err := c.Explore(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.Options(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := explore.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evaluated != want.Evaluated || len(got.Top) != len(want.Top) {
		t.Errorf("explore evaluated/top = %d/%d, want %d/%d",
			got.Evaluated, len(got.Top), want.Evaluated, len(want.Top))
	}
	for i := range want.Top {
		if got.Top[i].Speedup != want.Top[i].Speedup {
			t.Errorf("top[%d].Speedup = %v, want %v", i, got.Top[i].Speedup, want.Top[i].Speedup)
		}
	}
}

// TestClientOperationalEndpoints: Healthz, Ready, Metrics.
func TestClientOperationalEndpoints(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Errorf("Healthz: %v", err)
	}
	ready, err := c.Ready(ctx)
	if err != nil || !ready {
		t.Errorf("Ready = %v, %v; want true, nil", ready, err)
	}
	if _, err := c.Predict(ctx, paper.PDF1DParams()); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "server.requests") {
		t.Errorf("Metrics output lacks server.requests:\n%s", metrics)
	}
}

// TestClientRetriesTemporaryErrors: 503s are retried within budget
// and the call eventually succeeds.
func TestClientRetriesTemporaryErrors(t *testing.T) {
	real := server.New(server.Config{}).Handler()
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	c := New(flaky.URL,
		WithRetryPolicy(RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond, Growth: 2, Jitter: 0.2}),
		WithJitterSourceForTest(func() float64 { return 0.5 }))
	p := paper.PDF1DParams()
	want, err := core.Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(context.Background(), p)
	if err != nil {
		t.Fatalf("Predict through flaky server: %v", err)
	}
	if got != want {
		t.Error("retried prediction differs from core.Predict")
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (two 503s + success)", n)
	}
}

// TestClientDoesNotRetryCallerErrors: a 400 is terminal; the client
// must not burn retries on it.
func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad worksheet"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 5, Backoff: time.Millisecond}))
	_, err := c.Predict(context.Background(), paper.PDF1DParams())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError with 400", err)
	}
	if apiErr.Message != "bad worksheet" {
		t.Errorf("Message = %q, want the server's error string", apiErr.Message)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d calls for a 400, want 1", n)
	}
}

// TestClientRetryBudgetExhausted: a persistent 503 fails after
// MaxRetries+1 attempts with the attempt count in the error.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"still down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}))
	_, err := c.Predict(context.Background(), paper.PDF1DParams())
	if err == nil {
		t.Fatal("Predict succeeded against a dead server")
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", n)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report the attempt count: %v", err)
	}
}

// TestClientContextCancelStopsRetries: a cancelled context ends the
// retry loop promptly.
func TestClientContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 100, Backoff: time.Hour}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Predict(ctx, paper.PDF1DParams())
	if err == nil {
		t.Fatal("Predict succeeded unexpectedly")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled retry loop ran %v", elapsed)
	}
}

// TestBackoffPolicyShape pins the exponential schedule and the cap.
func TestBackoffPolicyShape(t *testing.T) {
	p := RetryPolicy{Backoff: 100 * time.Millisecond, Growth: 2, MaxBackoff: 500 * time.Millisecond}
	noJitter := func() float64 { return 0.5 } // Jitter==0 ignores the source anyway
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 500 * time.Millisecond}, // capped
		{9, 500 * time.Millisecond},
	} {
		if got := p.BackoffForTest(tc.attempt, noJitter); got != tc.want {
			t.Errorf("backoffFor(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	jittered := RetryPolicy{Backoff: 100 * time.Millisecond, Growth: 2, Jitter: 0.2}
	lo := jittered.BackoffForTest(1, func() float64 { return 0 })
	hi := jittered.BackoffForTest(1, func() float64 { return 1 })
	if lo != 80*time.Millisecond || hi != 120*time.Millisecond {
		t.Errorf("jitter bounds = [%v, %v], want [80ms, 120ms]", lo, hi)
	}
}

// TestClientReadyDrain: Ready returns (false, nil) on 503 draining.
func TestClientReadyDrain(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
	}))
	defer ts.Close()
	// Readiness is a probe, not work: retrying a draining server would
	// just slow the probe down, so keep retries off here.
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{}))
	ready, err := c.Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ready {
		t.Error("Ready = true for a draining server")
	}
}

// TestClientSendsTrace: every attempt of one logical request carries
// the same trace ID under a fresh span ID.
func TestClientSendsTrace(t *testing.T) {
	var mu sync.Mutex
	var traces, spans []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, span, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		if !ok {
			t.Errorf("attempt carried unparseable trace header %q", r.Header.Get(obs.TraceHeader))
		}
		mu.Lock()
		traces = append(traces, id.String())
		spans = append(spans, span.String())
		mu.Unlock()
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		server.New(server.Config{}).Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond}))
	if _, err := c.Predict(context.Background(), paper.PDF1DParams()); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("saw %d attempts, want 3", len(traces))
	}
	if traces[0] != traces[1] || traces[1] != traces[2] {
		t.Errorf("trace ID changed across retries: %v", traces)
	}
	if spans[0] == spans[1] || spans[1] == spans[2] {
		t.Errorf("span IDs repeat across attempts: %v", spans)
	}
}

// TestAPIErrorTraceID: a failed request surfaces its trace ID — the
// server's echo when present, the client's own otherwise — and quotes
// it in the error string.
func TestAPIErrorTraceID(t *testing.T) {
	// A real ratd echoes the header; a 404 from it is terminal.
	c, _ := newTestPair(t, server.Config{})
	_, err := c.GetForTest(context.Background(), "/v1/nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if id, _, ok := obs.ParseTraceHeader(apiErr.TraceID + "-00000000"); !ok || id.IsZero() {
		t.Fatalf("APIError.TraceID %q is not a trace ID", apiErr.TraceID)
	}
	if !strings.Contains(apiErr.Error(), apiErr.TraceID) {
		t.Errorf("error string %q does not quote the trace ID", apiErr.Error())
	}

	// A server that never echoes: the client still knows what it sent.
	var sent string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, _, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		sent = id.String()
		http.Error(w, `{"error":"nope"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	_, err = New(ts.URL).Predict(context.Background(), paper.PDF1DParams())
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.TraceID != sent {
		t.Errorf("APIError.TraceID = %q, want the sent ID %q", apiErr.TraceID, sent)
	}
}

// TestClientRetryLogging: WithLogger gets one structured warn line per
// retry, carrying the trace ID and attempt number.
func TestClientRetryLogging(t *testing.T) {
	var calls atomic.Int64
	real := server.New(server.Config{}).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	c := New(ts.URL,
		WithRetryPolicy(RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond}),
		WithLogger(slog.New(slog.NewJSONHandler(&logBuf, nil))))
	if _, err := c.Predict(context.Background(), paper.PDF1DParams()); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d retry log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var prevTrace string
	for i, ln := range lines {
		var entry struct {
			Msg     string `json:"msg"`
			Attempt int    `json:"attempt"`
			TraceID string `json:"trace_id"`
			Err     string `json:"err"`
		}
		if err := json.Unmarshal([]byte(ln), &entry); err != nil {
			t.Fatalf("retry log line %d does not parse: %v", i, err)
		}
		if entry.Msg != "retry" || entry.Attempt != i+1 {
			t.Errorf("line %d: msg=%q attempt=%d, want retry/%d", i, entry.Msg, entry.Attempt, i+1)
		}
		if entry.TraceID == "" || (prevTrace != "" && entry.TraceID != prevTrace) {
			t.Errorf("line %d: trace_id %q (prev %q), want one stable non-empty ID", i, entry.TraceID, prevTrace)
		}
		prevTrace = entry.TraceID
		if !strings.Contains(entry.Err, "warming up") {
			t.Errorf("line %d: err %q does not carry the server error", i, entry.Err)
		}
	}
}

// TestClientStatus: the typed Status call returns the live snapshot.
func TestClientStatus(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Predict(ctx, paper.PDF1DParams()); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 1 || st.UptimeSeconds <= 0 {
		t.Errorf("status = %+v, want at least one counted request and positive uptime", st)
	}
	if _, ok := st.Endpoints["predict"]; !ok {
		t.Errorf("status endpoints missing predict: %+v", st.Endpoints)
	}
	if st.Stages["admission"].Count < 1 {
		t.Errorf("status stages missing admission observations: %+v", st.Stages)
	}
}

// syncLogBuffer lets the server's log goroutines and the test share a
// buffer safely.
type syncLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncLogBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceEndToEnd follows one trace ID through every surface the
// observability layer promises: the client's APIError, ratd's
// structured access log line, and that line's per-stage span record.
func TestTraceEndToEnd(t *testing.T) {
	var logBuf syncLogBuffer
	c, _ := newTestPair(t, server.Config{
		AccessLogger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	_, err := c.GetForTest(context.Background(), "/v1/predict/nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.TraceID == "" {
		t.Fatalf("err = %v, want *APIError with a trace ID", err)
	}

	found := false
	for _, ln := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var event struct {
			Path     string `json:"path"`
			TraceID  string `json:"trace_id"`
			SpanID   string `json:"span_id"`
			StagesNs string `json:"stages_ns"`
		}
		if err := json.Unmarshal([]byte(ln), &event); err != nil {
			t.Fatalf("access log line does not parse: %v\n%s", err, ln)
		}
		if event.TraceID != apiErr.TraceID {
			continue
		}
		found = true
		if event.Path != "/v1/predict/nope" {
			t.Errorf("log line path %q, want the failed request's path", event.Path)
		}
		if event.SpanID == "" {
			t.Error("log line has no span_id")
		}
		for _, stage := range []string{"admission=", "cache=", "batch_wait=", "kernel=", "encode="} {
			if !strings.Contains(event.StagesNs, stage) {
				t.Errorf("span record %q lacks %s", event.StagesNs, stage)
			}
		}
	}
	if !found {
		t.Errorf("no access log line carries the APIError trace ID %s:\n%s", apiErr.TraceID, logBuf.String())
	}
}

// TestParseRetryAfter pins both RFC 9110 forms of the header:
// delta-seconds and HTTP-date, with malformed values ignored.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"5", 5 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"soon", 0, false},
		{now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second, true},
		// A date already past means "retry now", never a negative wait.
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
	}
	for _, tc := range cases {
		got, ok := ParseRetryAfterForTest(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseRetryAfterForTest(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestClientHonorsHTTPDateRetryAfter: a 429 carrying an HTTP-date
// Retry-After makes the client wait until that instant before its
// retry — the same contract as delta-seconds.
func TestClientHonorsHTTPDateRetryAfter(t *testing.T) {
	real := server.New(server.Config{}).Handler()
	var calls atomic.Int64
	var firstAt, secondAt time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstAt = time.Now()
			// Two seconds out: HTTP-dates truncate to whole seconds, so
			// a one-second offset can land arbitrarily close to "now" —
			// two guarantees the honored wait is at least ~1s.
			w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"quota"}`, http.StatusTooManyRequests)
		default:
			secondAt = time.Now()
			real.ServeHTTP(w, r)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}))
	if _, err := c.Predict(context.Background(), paper.PDF1DParams()); err != nil {
		t.Fatalf("Predict through a 429-then-OK server: %v", err)
	}
	// HTTP-date resolution is one second; the honored wait lands
	// somewhere inside (1s, 2s] rather than at the 1ms backoff.
	if wait := secondAt.Sub(firstAt); wait < 900*time.Millisecond || wait > 5*time.Second {
		t.Errorf("retry waited %v; an HTTP-date two seconds out should be honored (not the 1ms backoff)", wait)
	}
}

// TestClientCapsRetryWaitAtDeadline: when the server's Retry-After
// cannot fit inside the request deadline, the client fails fast with
// the underlying 429 instead of sleeping into a guaranteed timeout.
func TestClientCapsRetryWaitAtDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"over quota"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxRetries: 5, Backoff: time.Millisecond}))
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Predict(ctx, paper.PDF1DParams())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Predict succeeded against a permanent 429")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("err = %v; want it to wrap the 429 APIError", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("client took %v; a 30s Retry-After against a 200ms deadline must fail fast", elapsed)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d calls; the retry could never fit the deadline", n)
	}
}

// TestClientAPIKey: WithAPIKey authenticates against a multi-tenant
// server, and a keyless client is refused with 401.
func TestClientAPIKey(t *testing.T) {
	reg, err := tenant.Parse(strings.NewReader(
		`{"tenants": [{"name": "a", "key": "sekrit", "rate_per_sec": 1000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Tenants: reg}
	keyed, ts := newTestPair(t, cfg, WithAPIKey("sekrit"), WithRetryPolicy(RetryPolicy{}))
	p := paper.PDF1DParams()
	want, err := core.Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := keyed.Predict(context.Background(), p)
	if err != nil {
		t.Fatalf("keyed Predict: %v", err)
	}
	if got != want {
		t.Error("tenanted prediction differs from core.Predict")
	}

	keyless := New(ts.URL, WithRetryPolicy(RetryPolicy{}))
	_, err = keyless.Predict(context.Background(), p)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnauthorized {
		t.Errorf("keyless Predict err = %v, want a 401 APIError", err)
	}
}

// TestClientWireBinaryBitForBit runs the three prediction calls over
// the binary wire format and compares every result to the local
// kernel with != — the format changes the bytes on the wire, never
// the prediction.
func TestClientWireBinaryBitForBit(t *testing.T) {
	c, _ := newTestPair(t, server.Config{}, WithWireFormat(WireBinary))
	ctx := context.Background()

	for _, cs := range []paper.Case{paper.PDF1D, paper.PDF2D, paper.MD} {
		p := paper.Params(cs)
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Predict(ctx, p)
		if err != nil {
			t.Fatalf("%s: %v", cs, err)
		}
		if got != want {
			t.Errorf("%s: binary-wire prediction differs from core.Predict", cs)
		}
	}

	mcfg := core.MultiConfig{Devices: 4, Topology: core.IndependentChannels}
	wantM, err := core.PredictMulti(paper.MDParams(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := c.PredictMulti(ctx, paper.MDParams(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotM != wantM {
		t.Error("binary-wire multi prediction differs from core.PredictMulti")
	}

	ps := []core.Parameters{paper.PDF1DParams(), paper.PDF2DParams(), paper.MDParams()}
	batch, err := c.PredictBatch(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		want, err := core.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("binary-wire batch element %d differs from core.Predict", i)
		}
	}
}

// TestClientWireBinaryErrors: error responses stay JSON even under
// the binary format, so APIError carries the server's message.
func TestClientWireBinaryErrors(t *testing.T) {
	c, _ := newTestPair(t, server.Config{}, WithWireFormat(WireBinary))
	p := paper.PDF1DParams()
	p.Dataset.ElementsIn = -1
	_, err := c.Predict(context.Background(), p)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("invalid worksheet over binary wire returned %v, want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", apiErr.StatusCode)
	}
	if apiErr.Message == "" {
		t.Error("APIError lost the server's JSON error message")
	}
}
