package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	. "github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/server"
	"github.com/chrec/rat/internal/worksheet"
)

func streamRequest() ExploreRequest {
	return ExploreRequest{
		Worksheet: worksheet.DocFromParams(paper.PDF1DParams()),
		ClocksMHz: []float64{75, 100, 150},
		TopK:      3,
		Frontier:  true,
	}
}

// TestClientExploreStream: the streaming endpoint delivers the same
// candidates as the one-shot Explore, kind by kind, with the summary
// arriving last and matching.
func TestClientExploreStream(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	ctx := context.Background()
	req := streamRequest()

	whole, err := c.Explore(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	var top, front []uint64
	sum, err := c.ExploreStream(ctx, req, func(line ExploreLine) error {
		if line.Candidate == nil {
			return nil
		}
		switch line.Kind {
		case "top":
			top = append(top, line.Candidate.Index)
		case "frontier":
			front = append(front, line.Candidate.Index)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Evaluated != whole.Evaluated || sum.Feasible != whole.Feasible {
		t.Errorf("stream summary (%d, %d), want (%d, %d)",
			sum.Evaluated, sum.Feasible, whole.Evaluated, whole.Feasible)
	}
	if len(top) != len(whole.Top) || len(front) != len(whole.Frontier) {
		t.Fatalf("streamed %d top, %d frontier; one-shot returned %d, %d",
			len(top), len(front), len(whole.Top), len(whole.Frontier))
	}
	for i, c := range whole.Top {
		if top[i] != c.Index {
			t.Errorf("top[%d] index %d, want %d", i, top[i], c.Index)
		}
	}
	for i, c := range whole.Frontier {
		if front[i] != c.Index {
			t.Errorf("frontier[%d] index %d, want %d", i, front[i], c.Index)
		}
	}
}

// TestClientExploreStreamSharded: index_lo/index_hi restrict the
// stream to one shard of the grid.
func TestClientExploreStreamSharded(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	req := streamRequest()
	req.IndexLo, req.IndexHi = 1, 2
	seen := 0
	sum, err := c.ExploreStream(context.Background(), req, func(line ExploreLine) error {
		if line.Candidate != nil {
			seen++
			if got := line.Candidate.Index; got != 1 {
				t.Errorf("shard [1,2) streamed candidate %d", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Evaluated != 1 {
		t.Errorf("shard summary evaluated %d, want 1", sum.Evaluated)
	}
	if seen == 0 {
		t.Error("shard streamed no candidates")
	}
}

// TestClientExploreStreamCallbackError: a callback error aborts the
// stream and surfaces as the call's error.
func TestClientExploreStreamCallbackError(t *testing.T) {
	c, _ := newTestPair(t, server.Config{})
	boom := errors.New("enough")
	_, err := c.ExploreStream(context.Background(), streamRequest(), func(ExploreLine) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ExploreStream = %v, want the callback's error", err)
	}
}

// TestClientExploreStreamTruncated: a stream that dies before its
// summary line is an error, never a silently partial result.
func TestClientExploreStreamTruncated(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write([]byte(`{"kind":"top","candidate":{"index":0}}` + "\n"))
	}))
	t.Cleanup(ts.Close)
	_, err := New(ts.URL).ExploreStream(context.Background(), streamRequest(), func(ExploreLine) error { return nil })
	if err == nil {
		t.Fatal("truncated stream returned nil error")
	}
}

// TestRetryAfterSurfacing: RetryAfter exposes a 429's Retry-After
// hint and nothing else.
func TestRetryAfterSurfacing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		http.Error(w, `{"error":"too busy"}`, http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{})) // no retries: surface the 429 itself
	_, err := c.Status(context.Background())
	d, ok := RetryAfter(err)
	if !ok || d != 2*time.Second {
		t.Fatalf("RetryAfter(429) = %v, %v; want 2s, true", d, ok)
	}

	if _, ok := RetryAfter(nil); ok {
		t.Error("RetryAfter(nil) = true")
	}
	if _, ok := RetryAfter(errors.New("plain")); ok {
		t.Error("RetryAfter(plain error) = true")
	}
	if _, ok := RetryAfter(&APIError{StatusCode: 429}); ok {
		t.Error("RetryAfter(429 without a hint) = true")
	}
	if _, ok := RetryAfter(&APIError{StatusCode: 503, RetryAfter: time.Second}); ok {
		t.Error("RetryAfter(non-429) = true")
	}
}

// TestClientExploreDistributed: the typed wrapper round-trips the
// distributed endpoint against a self-coordinating server.
func TestClientExploreDistributed(t *testing.T) {
	c, ts := newTestPair(t, server.Config{})
	resp, err := c.ExploreDistributed(context.Background(), DistributedExploreRequest{
		Explore: streamRequest(),
		Workers: []string{ts.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 clocks x 2 bufferings (the unset axis defaults to both).
	if resp.Evaluated != 6 || len(resp.Top) != 3 {
		t.Errorf("distributed evaluated %d with %d top, want 6 and 3", resp.Evaluated, len(resp.Top))
	}
	if resp.Cluster.Workers != 1 || resp.Cluster.Dispatched == 0 {
		t.Errorf("cluster stats %+v, want one worker with dispatches", resp.Cluster)
	}
}
