package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/chrec/rat/internal/api"
)

// Streaming-explore wire types re-exported for callers outside the
// module.
type (
	// ExploreLine is one line of a streaming explore response.
	ExploreLine = api.ExploreLine
	// ExploreSummary is the closing line of a streaming explore
	// response.
	ExploreSummary = api.ExploreSummary
	// DistributedExploreRequest asks a ratd instance to coordinate an
	// exploration across a fleet of peers.
	DistributedExploreRequest = api.DistributedExploreRequest
	// DistributedExploreResponse is the merged fleet result.
	DistributedExploreResponse = api.DistributedExploreResponse
)

// maxExploreLine bounds one JSONL line of a streaming explore
// response. A candidate line is a few hundred bytes; a megabyte means
// the peer is not speaking the protocol.
const maxExploreLine = 1 << 20

// ExploreStream runs a bounded grid search on the service in
// streaming mode (POST /v1/explore?stream=jsonl) and calls fn for
// every non-summary line — "top" and "frontier" candidates in ranking
// order, plus "span" lines when the request asked for them — as it
// arrives. The closing summary line is returned. A non-nil error from
// fn aborts the stream and is returned verbatim.
//
// Streaming is how the distributed coordinator (internal/cluster)
// consumes shard results: candidates arrive incrementally and the
// summary's Evaluated count lets the merger prove full coverage of
// the index range.
//
// Retries cover connection setup and pre-body HTTP errors exactly as
// Explore does; once fn has seen a line the request is past the
// retry loop, and a mid-stream disconnect surfaces as an error.
func (c *Client) ExploreStream(ctx context.Context, req ExploreRequest, fn func(ExploreLine) error) (ExploreSummary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ExploreSummary{}, err
	}
	respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/explore?stream=jsonl", body, false)
	if err != nil {
		return ExploreSummary{}, err
	}
	return decodeExploreStream(bytes.NewReader(respBody), fn)
}

// decodeExploreStream parses a JSONL explore stream, dispatching
// lines to fn until the terminating summary.
func decodeExploreStream(r io.Reader, fn func(ExploreLine) error) (ExploreSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxExploreLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var el ExploreLine
		if err := json.Unmarshal(line, &el); err != nil {
			return ExploreSummary{}, fmt.Errorf("explore stream: bad line %.120q: %w", line, err)
		}
		if el.Kind == "summary" {
			if el.Summary == nil {
				return ExploreSummary{}, errors.New("explore stream: summary line without summary body")
			}
			return *el.Summary, nil
		}
		if fn != nil {
			if err := fn(el); err != nil {
				return ExploreSummary{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return ExploreSummary{}, fmt.Errorf("explore stream: %w", err)
	}
	return ExploreSummary{}, errors.New("explore stream: truncated (no summary line)")
}

// ExploreDistributed asks the service to coordinate an exploration
// across the fleet listed in the request (POST /v1/explore/distributed).
// The merged result is bit-for-bit what a single node would return
// for the same embedded explore request.
func (c *Client) ExploreDistributed(ctx context.Context, req DistributedExploreRequest) (DistributedExploreResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return DistributedExploreResponse{}, err
	}
	var resp DistributedExploreResponse
	if err := c.do(ctx, "/v1/explore/distributed", body, &resp); err != nil {
		return DistributedExploreResponse{}, err
	}
	return resp, nil
}

// RetryAfter extracts the server's Retry-After hint from an error
// returned by this package, however deeply wrapped. It reports ok
// only for a 429 (Too Many Requests) carrying a hint — the signal a
// coordinator uses to back off one worker without abandoning it.
func RetryAfter(err error) (time.Duration, bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter, true
	}
	return 0, false
}
