// Package client is the typed Go client for ratd, the RAT prediction
// service. It speaks the HTTP/JSON API of internal/server: single and
// multi-FPGA predictions, batch predictions and bounded design-space
// explorations, all from the worksheet parameter form.
//
// Every API endpoint is pure — a prediction is a function of its
// worksheet, with no server-side state mutation — so every request is
// idempotent and safe to retry. The client exploits that with
// exponential backoff plus jitter (the same policy shape as
// internal/fault's retry machinery): transport errors and 429/502/
// 503/504 responses are retried up to the policy budget, honoring
// Retry-After hints; any other HTTP error is returned immediately as
// an *APIError.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/wire"
	"github.com/chrec/rat/internal/worksheet"
)

// Wire types re-exported for callers outside the module.
type (
	// ExploreRequest describes a bounded grid search around a base
	// worksheet.
	ExploreRequest = api.ExploreRequest
	// ExploreResponse carries the search outcome: top candidates,
	// optional Pareto frontier, and engine statistics.
	ExploreResponse = api.ExploreResponse
	// Candidate is one evaluated design point.
	Candidate = api.Candidate
	// Status is a live operational snapshot of a ratd process.
	Status = api.Status
)

// RetryPolicy bounds the client's retry behavior. It mirrors the
// shape of the fault-injection retry policy used by the simulated
// platforms (internal/fault): a retry budget and exponential backoff,
// here with jitter because real networks reward desynchronization.
type RetryPolicy struct {
	// MaxRetries is the number of retry attempts after the first try;
	// 0 disables retries.
	MaxRetries int
	// Backoff is the wait before the first retry; retry k waits
	// Backoff * Growth^(k-1), capped at MaxBackoff.
	Backoff time.Duration
	// Growth is the exponential backoff factor. Zero means 2.
	Growth float64
	// Jitter is the fraction of the computed backoff randomized away:
	// 0.2 means the actual wait is uniform in [0.8d, 1.2d].
	Jitter float64
	// MaxBackoff caps a single wait. Zero means 5s.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is the policy New installs: three retries from
// 100ms doubling, 20% jitter, capped at 5s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 3,
		Backoff:    100 * time.Millisecond,
		Growth:     2,
		Jitter:     0.2,
		MaxBackoff: 5 * time.Second,
	}
}

// backoffFor returns the jittered wait before retry attempt k (1-based).
func (p RetryPolicy) backoffFor(attempt int, rnd func() float64) time.Duration {
	growth := p.Growth
	if growth == 0 {
		growth = 2
	}
	maxB := p.MaxBackoff
	if maxB == 0 {
		maxB = 5 * time.Second
	}
	d := float64(p.Backoff)
	for k := 1; k < attempt; k++ {
		d *= growth
		if d >= float64(maxB) {
			break
		}
	}
	if d > float64(maxB) {
		d = float64(maxB)
	}
	if p.Jitter > 0 && rnd != nil {
		d *= 1 + p.Jitter*(2*rnd()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// APIError is a non-2xx response from the service.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error string.
	Message string
	// RetryAfter is the parsed Retry-After hint, zero when absent.
	RetryAfter time.Duration
	// TraceID is the trace identifier of the failed request — the
	// server's echo when it answered with one, otherwise the ID the
	// client sent. Quote it when filing a report: the same ID appears
	// in ratd's access log and per-stage span records.
	TraceID string
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("ratd: %d %s: %s (trace %s)", e.StatusCode, http.StatusText(e.StatusCode), e.Message, e.TraceID)
	}
	return fmt.Sprintf("ratd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Temporary reports whether the error is worth retrying.
func (e *APIError) Temporary() bool {
	switch e.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// WireFormat selects the encoding the client uses for prediction
// requests and responses.
type WireFormat int

const (
	// WireJSON is the default worksheet-JSON exchange.
	WireJSON WireFormat = iota
	// WireBinary uses the compact application/x-rat-bin frame format
	// in both directions for Predict, PredictMulti and PredictBatch —
	// fixed-width fields instead of JSON text, the cheap choice for
	// bulk traffic. Explore and the meta endpoints stay JSON. The
	// decoded predictions are bit-for-bit identical either way (pinned
	// by the server's wire-parity tests); see docs/SERVER.md.
	WireBinary
)

// Client talks to one ratd instance. The zero value is not usable;
// construct with New.
type Client struct {
	baseURL string
	hc      *http.Client
	retry   RetryPolicy
	rnd     func() float64
	log     *slog.Logger
	apiKey  string
	wireFmt WireFormat
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying http.Client (default: 30s
// timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy replaces the retry policy.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// WithLogger installs a structured logger. The client logs one warn
// line per retry (attempt number, wait, trace_id, the error being
// retried); nothing is logged on the happy path.
func WithLogger(l *slog.Logger) Option { return func(c *Client) { c.log = l } }

// WithAPIKey attaches a tenant API key to every request as a bearer
// token (multi-tenant servers refuse keyless API requests with 401;
// see docs/TENANCY.md).
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithWireFormat selects the prediction wire format (default
// WireJSON).
func WithWireFormat(f WireFormat) Option { return func(c *Client) { c.wireFmt = f } }

// withJitterSource injects the jitter randomness (tests).
func withJitterSource(rnd func() float64) Option { return func(c *Client) { c.rnd = rnd } }

// New builds a client for the service at baseURL (scheme://host:port).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: strings.TrimSuffix(baseURL, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retry:   DefaultRetryPolicy(),
		rnd:     rand.Float64,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Predict evaluates one worksheet on the service. The result is
// bit-for-bit what rat.Predict returns locally for the same
// parameters.
func (c *Client) Predict(ctx context.Context, p core.Parameters) (core.Prediction, error) {
	if c.wireFmt == WireBinary {
		respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/predict",
			wire.AppendBinaryWorksheet(nil, p), true)
		if err != nil {
			return core.Prediction{}, err
		}
		pr, err := wire.DecodeBinaryPrediction(respBody)
		if err != nil {
			return core.Prediction{}, err
		}
		return pr.Core(), nil
	}
	body, err := marshalWorksheet(p)
	if err != nil {
		return core.Prediction{}, err
	}
	var pr api.Prediction
	if err := c.do(ctx, "/v1/predict", body, &pr); err != nil {
		return core.Prediction{}, err
	}
	return pr.Core(), nil
}

// PredictMulti evaluates one worksheet across a multi-FPGA system,
// bit-for-bit rat.PredictMulti.
func (c *Client) PredictMulti(ctx context.Context, p core.Parameters, cfg core.MultiConfig) (core.MultiPrediction, error) {
	var body []byte
	if c.wireFmt != WireBinary {
		var err error
		body, err = marshalWorksheet(p)
		if err != nil {
			return core.MultiPrediction{}, err
		}
	}
	q := url.Values{}
	q.Set("devices", strconv.Itoa(cfg.Devices))
	switch cfg.Topology {
	case core.IndependentChannels:
		q.Set("topology", "independent")
	default:
		q.Set("topology", "shared")
	}
	if c.wireFmt == WireBinary {
		respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/predict?"+q.Encode(),
			wire.AppendBinaryWorksheet(nil, p), true)
		if err != nil {
			return core.MultiPrediction{}, err
		}
		mp, err := wire.DecodeBinaryMultiPrediction(respBody)
		if err != nil {
			return core.MultiPrediction{}, err
		}
		return mp.Core(), nil
	}
	var mp api.MultiPrediction
	if err := c.do(ctx, "/v1/predict?"+q.Encode(), body, &mp); err != nil {
		return core.MultiPrediction{}, err
	}
	return mp.Core(), nil
}

// PredictBatch evaluates many worksheets in one request; element i of
// the result is bit-for-bit rat.Predict of worksheet i.
func (c *Client) PredictBatch(ctx context.Context, ps []core.Parameters) ([]core.Prediction, error) {
	if c.wireFmt == WireBinary {
		respBody, err := c.roundTrip(ctx, http.MethodPost, "/v1/predict/batch",
			wire.AppendBinaryWorksheets(nil, ps), true)
		if err != nil {
			return nil, err
		}
		preds, err := wire.DecodeBinaryPredictions(respBody)
		if err != nil {
			return nil, err
		}
		out := make([]core.Prediction, len(preds))
		for i := range preds {
			out[i] = preds[i].Core()
		}
		return out, nil
	}
	docs := make([]worksheet.Doc, len(ps))
	for i, p := range ps {
		docs[i] = worksheet.DocFromParams(p)
	}
	body, err := json.Marshal(docs)
	if err != nil {
		return nil, err
	}
	var preds []api.Prediction
	if err := c.do(ctx, "/v1/predict/batch", body, &preds); err != nil {
		return nil, err
	}
	out := make([]core.Prediction, len(preds))
	for i := range preds {
		out[i] = preds[i].Core()
	}
	return out, nil
}

// Explore runs a bounded grid search on the service.
func (c *Client) Explore(ctx context.Context, req ExploreRequest) (ExploreResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ExploreResponse{}, err
	}
	var resp ExploreResponse
	if err := c.do(ctx, "/v1/explore", body, &resp); err != nil {
		return ExploreResponse{}, err
	}
	return resp, nil
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) error {
	_, err := c.get(ctx, "/healthz")
	return err
}

// Ready reports readiness: false (with nil error) while the server is
// draining.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	_, err := c.get(ctx, "/readyz")
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Metrics fetches the text rendering of the server's telemetry
// registry.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	return c.get(ctx, "/metrics")
}

// Status fetches the live operational snapshot of the service: QPS,
// per-endpoint latency quantiles, cache hit ratio, batcher occupancy
// and per-stage timing distributions. See docs/OBSERVABILITY.md for
// the schema.
func (c *Client) Status(ctx context.Context) (Status, error) {
	body, err := c.roundTrip(ctx, http.MethodGet, "/v1/status", nil, false)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

func marshalWorksheet(p core.Parameters) ([]byte, error) {
	var buf bytes.Buffer
	if err := worksheet.EncodeJSON(&buf, p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// do POSTs body to path with the retry policy and decodes the JSON
// response into out. Retrying POSTs is sound here because every
// endpoint is a pure function of the request.
func (c *Client) do(ctx context.Context, path string, body []byte, out any) error {
	respBody, err := c.roundTrip(ctx, http.MethodPost, path, body, false)
	if err != nil {
		return err
	}
	return json.Unmarshal(respBody, out)
}

// get fetches a text endpoint with the same retry discipline.
func (c *Client) get(ctx context.Context, path string) (string, error) {
	body, err := c.roundTrip(ctx, http.MethodGet, path, nil, false)
	return string(body), err
}

// roundTrip runs one logical request through the retry loop. binary
// marks a prediction exchange in the x-rat-bin wire format: the body
// is a binary frame and the response is requested in kind.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte, binary bool) ([]byte, error) {
	// One trace spans the logical request; every attempt under it gets
	// its own span ID, so a server-side log shows retries as siblings.
	trace := obs.NewTraceID()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			wait := c.retry.backoffFor(attempt, c.rnd)
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > wait {
				wait = apiErr.RetryAfter
			}
			if c.log != nil {
				c.log.LogAttrs(ctx, slog.LevelWarn, "retry",
					slog.String("method", method),
					slog.String("path", path),
					slog.Int("attempt", attempt),
					slog.Duration("wait", wait),
					slog.String("trace_id", trace.String()),
					slog.Any("err", lastErr))
			}
			// Honored waits are capped by the request deadline: when
			// even the server's own Retry-After hint cannot fit before
			// the context expires, fail now instead of sleeping into a
			// guaranteed timeout.
			if deadline, ok := ctx.Deadline(); ok && wait >= time.Until(deadline) {
				return nil, fmt.Errorf("retry wait %v exceeds the request deadline: %w", wait, lastErr)
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
			}
		}

		respBody, err := c.attempt(ctx, method, path, body, binary, trace)
		if err == nil {
			return respBody, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) && !apiErr.Temporary() {
			return nil, err // the request itself is wrong; retrying cannot help
		}
		if attempt >= c.retry.MaxRetries {
			if attempt > 0 {
				return nil, fmt.Errorf("after %d attempts: %w", attempt+1, err)
			}
			return nil, err
		}
	}
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte, binary bool, trace obs.TraceID) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		if binary {
			req.Header.Set("Content-Type", wire.ContentTypeBinary)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if binary {
		// Errors still arrive as JSON bodies; only 2xx prediction
		// responses use the binary frame.
		req.Header.Set("Accept", wire.ContentTypeBinary)
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(trace, obs.NewSpanID()))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode, TraceID: trace.String()}
		if id, _, ok := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader)); ok {
			apiErr.TraceID = id.String() // prefer the server's echo: it is what the access log shows
		}
		var e api.Error
		if json.Unmarshal(respBody, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(respBody))
		}
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			apiErr.RetryAfter = d
		}
		return nil, apiErr
	}
	return respBody, nil
}

// parseRetryAfter parses a Retry-After header in either RFC 9110
// form: delta-seconds ("5") or an HTTP-date ("Fri, 08 Aug 2026
// 12:00:00 GMT", evaluated against now — a date already past means
// retry immediately). Malformed values report !ok and are ignored,
// leaving the client on its own backoff schedule.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}
