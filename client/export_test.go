package client

import (
	"context"
	"time"
)

// Hooks for the external test package. The client's tests live in
// package client_test so they can stand up a real internal/server —
// which now imports this package for distributed-explore
// coordination — without an import cycle in the test binary.

// WithJitterSourceForTest injects the retry jitter randomness.
func WithJitterSourceForTest(rnd func() float64) Option { return withJitterSource(rnd) }

// ParseRetryAfterForTest exposes the Retry-After header parser.
func ParseRetryAfterForTest(v string, now time.Time) (time.Duration, bool) {
	return parseRetryAfter(v, now)
}

// GetForTest exposes the text-endpoint fetch path.
func (c *Client) GetForTest(ctx context.Context, path string) (string, error) {
	return c.get(ctx, path)
}

// BackoffForTest exposes the jittered backoff schedule.
func (p RetryPolicy) BackoffForTest(attempt int, rnd func() float64) time.Duration {
	return p.backoffFor(attempt, rnd)
}
