package rat_test

import (
	"math"
	"testing"

	rat "github.com/chrec/rat"
	"github.com/chrec/rat/internal/harness"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/sim"
)

// harnessByID re-exports the experiment lookup for the facade tests.
func harnessByID(id string) (harness.Experiment, bool) { return harness.ByID(id) }

// ablatedNallatech returns the Nallatech model with its non-ideal
// behaviours stripped: no setup latency, no repeat overhead, and flat
// link rates pinned to the worksheet alphas (0.37 / 0.16 of 1 GB/s).
func ablatedNallatech() platform.Platform {
	p := platform.NallatechH101()
	p.Interconnect.WriteLink = platform.Link{
		Rate: []platform.RatePoint{{Bytes: 1, Bps: 0.37e9}, {Bytes: 1 << 30, Bps: 0.37e9}},
	}
	p.Interconnect.ReadLink = platform.Link{
		Rate: []platform.RatePoint{{Bytes: 1, Bps: 0.16e9}, {Bytes: 1 << 30, Bps: 0.16e9}},
	}
	return p
}

// TestAblationIdealPlatformMatchesAnalyticModel: with the calibrated
// non-idealities removed, the simulated platform degenerates to the
// analytic model — the prediction error in the full model comes
// entirely from the modelled platform behaviour, not from simulator
// artifacts. (DESIGN.md, "Design decisions & ablations".)
func TestAblationIdealPlatformMatchesAnalyticModel(t *testing.T) {
	params := paper.PDF1DParams()
	pr := rat.MustPredict(params)

	sc := rcsim.Scenario{
		Name:            "pdf1d-ablated",
		Platform:        ablatedNallatech(),
		ClockHz:         rat.MHz(150),
		Buffering:       rat.SingleBuffered,
		Iterations:      400,
		ElementsIn:      512,
		ElementsOut:     1,
		BytesPerElement: 4,
		// Ablate the kernel non-idealities too: exactly the
		// worksheet's op budget at the worksheet's rate.
		KernelCycles: func(_, elements int) int64 {
			return int64(float64(elements) * params.Comp.OpsPerElement / params.Comp.ThroughputProc)
		},
	}
	m, err := rcsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(m.TComm()-pr.TComm) / pr.TComm; d > 1e-6 {
		t.Errorf("ablated t_comm %.6e vs analytic %.6e (%.2g relative)", m.TComm(), pr.TComm, d)
	}
	// The kernel executes whole cycles; the analytic model's 19660.8
	// cycles quantize to 19660, bounding agreement at ~5e-5.
	if d := math.Abs(m.TComp()-pr.TComp) / pr.TComp; d > 1e-4 {
		t.Errorf("ablated t_comp %.6e vs analytic %.6e", m.TComp(), pr.TComp)
	}
	if d := math.Abs(m.TRC()-pr.TRCSingle) / pr.TRCSingle; d > 1e-4 {
		t.Errorf("ablated t_RC %.6e vs analytic %.6e", m.TRC(), pr.TRCSingle)
	}
}

// TestAblationRepeatOverheadExplainsCommError: the repeat-transfer
// overhead alone accounts for most of the 1-D PDF communication
// misprediction; removing just that term cuts the measured/predicted
// ratio from ~4.5x to under 1.7x.
func TestAblationRepeatOverheadExplainsCommError(t *testing.T) {
	params := paper.PDF1DParams()
	pr := rat.MustPredict(params)

	full, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	mFull, err := rat.Simulate(full)
	if err != nil {
		t.Fatal(err)
	}

	noRepeat := full
	p := platform.NallatechH101()
	p.Interconnect.WriteLink.Repeat = 0
	p.Interconnect.ReadLink.Repeat = 0
	noRepeat.Platform = p
	mNo, err := rat.Simulate(noRepeat)
	if err != nil {
		t.Fatal(err)
	}

	fullRatio := mFull.TComm() / pr.TComm
	noRatio := mNo.TComm() / pr.TComm
	if fullRatio < 4 || fullRatio > 5 {
		t.Errorf("full-platform comm ratio = %.2f, want ~4.5", fullRatio)
	}
	if noRatio > 1.7 {
		t.Errorf("without repeat overhead the ratio should collapse: got %.2f", noRatio)
	}
}

// TestAblationAlphaSizeMismatchExplains2DError: re-predicting the 2-D
// study with an alpha measured at the actual 256 KB result size (as
// the paper's own tabulation advice would have it) brings the
// communication prediction within a few percent of the simulated
// measurement.
func TestAblationAlphaSizeMismatchExplains2DError(t *testing.T) {
	params := paper.PDF2DParams()
	naive := rat.MustPredict(params)

	sc, err := rat.CaseStudyScenario(rat.PDF2D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rat.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := m.TComm() / naive.TComm; ratio < 5.5 {
		t.Fatalf("2 KB-alpha prediction should miss by ~6x, got %.2f", ratio)
	}

	honest := params
	ic := platform.NallatechH101().Interconnect
	honest.Comm.AlphaRead = ic.MeasureAlpha(platform.Read, 262144)
	fixed := rat.MustPredict(honest)
	if d := math.Abs(m.TComm()-fixed.TComm) / m.TComm(); d > 0.05 {
		t.Errorf("size-matched alpha still misses by %.1f%%", d*100)
	}
}

// TestAblationDoubleBufferingHidesCommunication: running the 1-D PDF
// double-buffered masks the mispredicted communication behind the
// stable computation, recovering prediction accuracy — the paper's
// "had the communication been double buffered" remark.
func TestAblationDoubleBufferingHidesCommunication(t *testing.T) {
	params := paper.PDF1DParams()
	pr := rat.MustPredict(params)

	db, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.DoubleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	mDB, err := rat.Simulate(db)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		t.Fatal(err)
	}
	mSB, err := rat.Simulate(sb)
	if err != nil {
		t.Fatal(err)
	}
	// Double buffering is faster and lands closer to its prediction.
	if mDB.TRC() >= mSB.TRC() {
		t.Errorf("DB %.4e not faster than SB %.4e", mDB.TRC(), mSB.TRC())
	}
	errDB := math.Abs(mDB.TRC()-pr.TRCDouble) / pr.TRCDouble
	errSB := math.Abs(mSB.TRC()-pr.TRCSingle) / pr.TRCSingle
	if errDB >= errSB {
		t.Errorf("DB prediction error %.1f%% should beat SB's %.1f%%", errDB*100, errSB*100)
	}
	if errDB > 0.08 {
		t.Errorf("DB prediction error %.1f%%, want under 8%%", errDB*100)
	}
}

// TestAblationIntegerTimeExactness: the integer-picosecond clock
// conversion rounds once per duration, so a 400-batch run accumulates
// less than a nanosecond of drift against exact arithmetic — the
// motivation for sim.Time over float64 seconds.
func TestAblationIntegerTimeExactness(t *testing.T) {
	c := sim.Clock{Hz: 150e6}
	cycles := int64(20850)
	exact := float64(cycles) / 150e6
	one := c.Cycles(cycles).Seconds()
	if math.Abs(one-exact) > 1e-12 {
		t.Errorf("single conversion off by %g s", one-exact)
	}
	var total sim.Time
	for i := 0; i < 400; i++ {
		total += c.Cycles(cycles)
	}
	if drift := math.Abs(total.Seconds() - 400*exact); drift > 1e-9 {
		t.Errorf("400-batch drift = %g s, want < 1 ns", drift)
	}
}
