// Command ratbench regenerates the paper's tables and figures,
// printing published values side by side with this reproduction's
// predictions and simulated measurements.
//
// Usage:
//
//	ratbench            # run every experiment
//	ratbench -list      # list experiment identifiers
//	ratbench -exp table3 -exp fig2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/chrec/rat/internal/harness"
)

type expList []string

func (e *expList) String() string     { return strings.Join(*e, ",") }
func (e *expList) Set(v string) error { *e = append(*e, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ratbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list bool
		exps expList
	)
	fs.BoolVar(&list, "list", false, "list experiment identifiers and exit")
	fs.Var(&exps, "exp", "experiment identifier to run (repeatable; default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if list {
		for _, e := range harness.All() {
			fmt.Fprintf(out, "%-14s %s\n", e.ID, e.Title)
		}
		return 0
	}

	selected := harness.All()
	if len(exps) > 0 {
		selected = selected[:0]
		for _, id := range exps {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(errOut, "ratbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	failed := false
	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "=== %s — %s ===\n", e.ID, e.Title)
		text, err := e.Run()
		if err != nil {
			fmt.Fprintf(errOut, "ratbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Fprint(out, text)
	}
	if failed {
		return 1
	}
	return 0
}
