// Command ratbench regenerates the paper's tables and figures,
// printing published values side by side with this reproduction's
// predictions and simulated measurements.
//
// Usage:
//
//	ratbench            # run every experiment
//	ratbench -list      # list experiment identifiers
//	ratbench -exp table3 -exp fig2
//	ratbench -metrics -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Every run records per-experiment wall time and pass/fail counters
// (plus the MD-dataset cache hit rate) into a telemetry registry; the
// run ends with a one-line summary sourced from it, and -metrics
// prints the full registry. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/chrec/rat/internal/harness"
	"github.com/chrec/rat/internal/telemetry"
)

type expList []string

func (e *expList) String() string     { return strings.Join(*e, ",") }
func (e *expList) Set(v string) error { *e = append(*e, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ratbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list       bool
		exps       expList
		metrics    bool
		cpuProfile string
		memProfile string
	)
	fs.BoolVar(&list, "list", false, "list experiment identifiers and exit")
	fs.Var(&exps, "exp", "experiment identifier to run (repeatable; default all)")
	fs.BoolVar(&metrics, "metrics", false, "print the telemetry registry after the run")
	fs.StringVar(&cpuProfile, "cpuprofile", "", "write a pprof CPU profile")
	fs.StringVar(&memProfile, "memprofile", "", "write a pprof heap profile")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if list {
		for _, e := range harness.All() {
			fmt.Fprintf(out, "%-14s %s\n", e.ID, e.Title)
		}
		return 0
	}

	selected := harness.All()
	if len(exps) > 0 {
		selected = selected[:0]
		for _, id := range exps {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(errOut, "ratbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(errOut, "ratbench: %v\n", fmt.Errorf("cpu profile: %w", err))
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(errOut, "ratbench: %v\n", fmt.Errorf("cpu profile %s: %w", cpuProfile, err))
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// Fresh registry per run so the summary reflects this invocation;
	// the harness's internal instrumentation (MD-dataset cache) is
	// pointed at it too.
	reg := telemetry.NewRegistry()
	harness.SetRegistry(reg)
	defer harness.SetRegistry(telemetry.Default())

	failed := false
	for i, e := range selected {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "=== %s — %s ===\n", e.ID, e.Title)
		text, err := e.RunWith(reg)
		if err != nil {
			fmt.Fprintf(errOut, "ratbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Fprint(out, text)
	}

	snap := reg.Snapshot()
	var wall time.Duration
	for _, t := range snap.Timers {
		wall += t.Total
	}
	fmt.Fprintf(out, "\nran %d experiment(s), %d failure(s), total wall time %s\n",
		snap.Counters["harness.experiments_run"],
		snap.Counters["harness.experiments_failed"],
		wall.Round(time.Millisecond))
	if metrics {
		fmt.Fprintln(out, "\nmetrics:")
		if err := telemetry.WriteText(out, snap); err != nil {
			fmt.Fprintf(errOut, "ratbench: %v\n", err)
			return 1
		}
	}

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintf(errOut, "ratbench: %v\n", fmt.Errorf("heap profile: %w", err))
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(errOut, "ratbench: %v\n", fmt.Errorf("heap profile %s: %w", memProfile, err))
			f.Close()
			return 1
		}
		f.Close()
	}

	if failed {
		return 1
	}
	return 0
}
