package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestList(t *testing.T) {
	code, out, _ := runBench(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "table1", "table10", "precision", "solver", "ext-multifpga", "ext-bounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestSelectedExperiments(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "table3", "-exp", "fig3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "=== table3") || !strings.Contains(out, "=== fig3") {
		t.Errorf("headers missing:\n%s", out)
	}
	if !strings.Contains(out, "1.31E-4") || !strings.Contains(out, "20850") {
		t.Errorf("experiment content missing:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runBench(t, "-exp", "table42")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("exit %d, %q", code, errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runBench(t, "-frequency", "11"); code != 2 {
		t.Errorf("bad flag exit %d", code)
	}
}

// TestExitCodes pins the status contract: 0 success, 1 runtime
// failure (e.g. an unwritable profile path), 2 usage error.
func TestExitCodes(t *testing.T) {
	badPath := filepath.Join(t.TempDir(), "no", "such", "dir", "out.pprof")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"bad-flag", []string{"-frequency", "11"}, 2},
		{"unknown-exp", []string{"-exp", "table42"}, 2},
		{"bad-cpuprofile", []string{"-exp", "fig3", "-cpuprofile", badPath}, 1},
		{"bad-memprofile", []string{"-exp", "fig3", "-memprofile", badPath}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runBench(t, tc.args...)
			if code != tc.want {
				t.Fatalf("args %v: exit %d, want %d (stderr %q)", tc.args, code, tc.want, errOut)
			}
			if tc.want == 1 && !strings.Contains(errOut, "profile") {
				t.Errorf("args %v: profile diagnostic missing from stderr %q", tc.args, errOut)
			}
		})
	}
}

func TestRunSummaryLine(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "fig3", "-exp", "table2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "ran 2 experiment(s), 0 failure(s), total wall time") {
		t.Errorf("summary line missing:\n%s", out)
	}
}

func TestMetricsFlag(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, out, errOut := runBench(t, "-exp", "fig3", "-metrics", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"metrics:", "counter harness.experiments_run", "timer   harness.experiment.fig3"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{cpu, mem} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", f, err)
		}
	}
}
