package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

func TestExploreTable(t *testing.T) {
	code, out, errOut := runSim(t, "explore", "-case", "pdf1d",
		"-clocks", "75,100,150", "-tp", "10,20,40", "-top", "5", "-frontier", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"explored 18 candidates", "top 5 by max-speedup", "Pareto frontier", "double-buffered", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExploreJSONL(t *testing.T) {
	code, out, errOut := runSim(t, "explore", "-case", "md",
		"-clocks", "75,150", "-buffering", "single", "-top", "3", "-jsonl", "-frontier")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var tops, fronts int
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var rec explore.JSONLCandidate
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch rec.Set {
		case "top":
			tops++
		case "frontier":
			fronts++
		default:
			t.Errorf("unknown set %q", rec.Set)
		}
		if rec.Speedup <= 0 || rec.Buffering != "single-buffered" {
			t.Errorf("implausible record: %+v", rec)
		}
	}
	if tops != 2 || fronts == 0 {
		t.Errorf("got %d top and %d frontier records, want 2 and >0", tops, fronts)
	}
}

func TestExploreMinCostWithConstraint(t *testing.T) {
	code, out, errOut := runSim(t, "explore", "-case", "pdf1d",
		"-clocks", "75,100,150", "-tp", "5,10,20", "-objective", "min-cost",
		"-min-speedup", "7.8", "-buffering", "double", "-top", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "top 1 by min-cost") {
		t.Errorf("missing min-cost header:\n%s", out)
	}
}

func TestExploreWorksheetBase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ws.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := worksheet.EncodeJSON(f, paper.PDF2DParams()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	code, out, errOut := runSim(t, "explore", "-worksheet", path, "-clocks", "100,150", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"explored 4 candidates", "explore.candidates", "explore.shard"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExploreUsageErrors(t *testing.T) {
	cases := [][]string{
		{"explore", "-case", "fft"},
		{"explore", "-clocks", "abc"},
		{"explore", "-topology", "ring"},
		{"explore", "-buffering", "triple"},
		{"explore", "-objective", "fastest"},
		{"explore", "-clocks", "100,100"}, // duplicate axis value
		{"explore", "-devices", "0"},
	}
	for _, args := range cases {
		code, _, errOut := runSim(t, args...)
		if code != 2 || !strings.Contains(errOut, "usage") {
			t.Errorf("%v: exit %d, stderr %q; want usage error (exit 2)", args, code, errOut)
		}
	}
	if code, _, _ := runSim(t, "explore", "-worksheet", "/nonexistent/ws.json"); code != 1 {
		t.Errorf("missing worksheet file: exit %d, want 1", code)
	}
}
