package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRunPDF1D(t *testing.T) {
	code, out, errOut := runSim(t, "run", "-case", "pdf1d", "-gantt")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"Nallatech", "t_comm  = 2.50E-5", "t_comp  = 1.39E-4", "speedup", "Comm |", "Comp |"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPDF2DDouble(t *testing.T) {
	code, out, _ := runSim(t, "run", "-case", "pdf2d", "-double")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "double-buffered") {
		t.Errorf("missing discipline:\n%s", out)
	}
}

func TestRunUnknownCase(t *testing.T) {
	code, _, errOut := runSim(t, "run", "-case", "fft")
	if code != 1 || !strings.Contains(errOut, "unknown case study") {
		t.Errorf("exit %d, %s", code, errOut)
	}
}

func TestMicrobench(t *testing.T) {
	code, out, _ := runSim(t, "microbench", "-platform", "nallatech", "-sizes", "2048,262144")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"PCI-X", "0.369", "0.160", "0.025"} {
		if !strings.Contains(out, want) {
			t.Errorf("microbench missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runSim(t, "microbench", "-platform", "skynet"); code != 1 {
		t.Error("unknown platform accepted")
	}
	if code, _, _ := runSim(t, "microbench", "-sizes", "big"); code != 1 {
		t.Error("bad sizes accepted")
	}
	if code, _, _ := runSim(t, "microbench", "-sizes", "-4"); code != 1 {
		t.Error("negative size accepted")
	}
}

func TestSynth(t *testing.T) {
	code, out, _ := runSim(t, "synth", "-elements", "1000", "-out", "1000", "-iters", "5",
		"-cycles", "5000", "-mhz", "100", "-gantt")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "synthetic scenario") || !strings.Contains(out, "t_RC") {
		t.Errorf("synth output:\n%s", out)
	}
	// Multi-device fan-out path.
	code, out, _ = runSim(t, "synth", "-elements", "1024", "-out", "1024", "-devices", "4")
	if code != 0 || !strings.Contains(out, "4 device(s)") {
		t.Errorf("multi synth: exit %d\n%s", code, out)
	}
	// Indivisible fan-out is rejected by the scenario validator.
	if code, _, _ := runSim(t, "synth", "-elements", "1000", "-devices", "3"); code != 1 {
		t.Error("indivisible multi accepted")
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if code, _, errOut := runSim(t); code != 2 || !strings.Contains(errOut, "usage") {
		t.Error("no args must print usage")
	}
	if code, _, errOut := runSim(t, "teleport"); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Error("unknown command must exit 2")
	}
	if code, out, _ := runSim(t, "help"); code != 0 || !strings.Contains(out, "usage") {
		t.Error("help must print usage")
	}
	if code, _, _ := runSim(t, "run", "-bogus"); code != 1 {
		t.Error("bad flag must fail")
	}
}
