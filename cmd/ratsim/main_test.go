package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/telemetry"
)

func runSim(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRunPDF1D(t *testing.T) {
	code, out, errOut := runSim(t, "run", "-case", "pdf1d", "-gantt")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"Nallatech", "t_comm  = 2.50E-5", "t_comp  = 1.39E-4", "speedup", "Comm |", "Comp |"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPDF2DDouble(t *testing.T) {
	code, out, _ := runSim(t, "run", "-case", "pdf2d", "-double")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "double-buffered") {
		t.Errorf("missing discipline:\n%s", out)
	}
}

func TestRunUnknownCase(t *testing.T) {
	code, _, errOut := runSim(t, "run", "-case", "fft")
	if code != 2 || !strings.Contains(errOut, "unknown case study") || !strings.Contains(errOut, "usage") {
		t.Errorf("exit %d, %s", code, errOut)
	}
}

func TestMicrobench(t *testing.T) {
	code, out, _ := runSim(t, "microbench", "-platform", "nallatech", "-sizes", "2048,262144")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"PCI-X", "0.369", "0.160", "0.025"} {
		if !strings.Contains(out, want) {
			t.Errorf("microbench missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runSim(t, "microbench", "-platform", "skynet"); code != 2 {
		t.Error("unknown platform must be a usage error")
	}
	// Malformed -sizes entries are usage errors: exit 2 plus the
	// usage text, never a silently shortened sweep.
	if code, _, errOut := runSim(t, "microbench", "-sizes", "big"); code != 2 || !strings.Contains(errOut, "usage") || !strings.Contains(errOut, "bad -sizes entry") {
		t.Errorf("bad sizes: exit %d, stderr %q", code, errOut)
	}
	if code, _, errOut := runSim(t, "microbench", "-sizes", "-4"); code != 2 || !strings.Contains(errOut, "usage") {
		t.Errorf("negative size: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := runSim(t, "microbench", "-sizes", "2048,oops,512"); code != 2 {
		t.Error("partially malformed -sizes must exit 2, not drop entries")
	}
}

func TestSynth(t *testing.T) {
	code, out, _ := runSim(t, "synth", "-elements", "1000", "-out", "1000", "-iters", "5",
		"-cycles", "5000", "-mhz", "100", "-gantt")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "synthetic scenario") || !strings.Contains(out, "t_RC") {
		t.Errorf("synth output:\n%s", out)
	}
	// Multi-device fan-out path.
	code, out, _ = runSim(t, "synth", "-elements", "1024", "-out", "1024", "-devices", "4")
	if code != 0 || !strings.Contains(out, "4 device(s)") {
		t.Errorf("multi synth: exit %d\n%s", code, out)
	}
	// Indivisible fan-out is a usage error caught before the run.
	if code, _, errOut := runSim(t, "synth", "-elements", "1000", "-devices", "3"); code != 2 || !strings.Contains(errOut, "usage") {
		t.Errorf("indivisible multi: exit %d, stderr %q", code, errOut)
	}
}

func TestUsageAndUnknown(t *testing.T) {
	if code, _, errOut := runSim(t); code != 2 || !strings.Contains(errOut, "usage") {
		t.Error("no args must print usage")
	}
	if code, _, errOut := runSim(t, "teleport"); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Error("unknown command must exit 2")
	}
	if code, out, _ := runSim(t, "help"); code != 0 || !strings.Contains(out, "usage") {
		t.Error("help must print usage")
	}
	if code, _, errOut := runSim(t, "run", "-bogus"); code != 2 || !strings.Contains(errOut, "usage") {
		t.Errorf("bad flag: exit %d, stderr %q", code, errOut)
	}
}

// TestUsageExitCodes is the table-driven contract for the CLI's exit
// statuses: 0 success, 1 runtime failure, 2 usage error (with the
// usage text on stderr).
func TestUsageExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-args", nil, 2},
		{"unknown-command", []string{"teleport"}, 2},
		{"help", []string{"help"}, 0},
		{"run-bad-flag", []string{"run", "-bogus"}, 2},
		{"run-unknown-case", []string{"run", "-case", "fft"}, 2},
		{"run-bad-fault-spec", []string{"run", "-case", "pdf1d", "-faults", "crc=2"}, 2},
		{"run-bad-fault-key", []string{"run", "-case", "pdf1d", "-faults", "cosmic=0.1"}, 2},
		{"run-bad-policy", []string{"run", "-case", "pdf1d", "-faults", "crc=0.01", "-fault-policy", "retries=no"}, 2},
		{"run-policy-without-faults", []string{"run", "-case", "pdf1d", "-fault-policy", "retries=5"}, 2},
		{"synth-bad-flag", []string{"synth", "-bogus"}, 2},
		{"synth-unknown-platform", []string{"synth", "-platform", "skynet"}, 2},
		{"synth-bad-iters", []string{"synth", "-iters", "0"}, 2},
		{"synth-bad-devices", []string{"synth", "-devices", "0"}, 2},
		{"synth-indivisible", []string{"synth", "-elements", "1000", "-devices", "3"}, 2},
		{"microbench-bad-flag", []string{"microbench", "-bogus"}, 2},
		{"microbench-unknown-platform", []string{"microbench", "-platform", "skynet"}, 2},
		{"microbench-bad-sizes", []string{"microbench", "-sizes", "big"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runSim(t, tc.args...)
			if code != tc.want {
				t.Fatalf("args %v: exit %d, want %d (stderr %q)", tc.args, code, tc.want, errOut)
			}
			if tc.want == 2 && !strings.Contains(errOut, "usage") {
				t.Errorf("args %v: usage text missing from stderr %q", tc.args, errOut)
			}
		})
	}
}

// TestRunWithFaults drives the fault-injection flags end to end: the
// run must succeed, print the fault summary line, and stay
// deterministic across invocations with the same seed.
func TestRunWithFaults(t *testing.T) {
	args := []string{"synth", "-elements", "1000", "-out", "1000", "-iters", "10", "-cycles", "5000",
		"-faults", "crc=0.1,upset=0.1", "-fault-seed", "42", "-fault-policy", "retries=10,backoff=10us"}
	code, out1, errOut := runSim(t, args...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out1, "faults  =") || !strings.Contains(out1, "retries") {
		t.Errorf("fault summary missing:\n%s", out1)
	}
	if _, out2, _ := runSim(t, args...); out1 != out2 {
		t.Errorf("same seed produced different output:\n%s\nvs\n%s", out1, out2)
	}
	// A different seed shifts the injected pattern.
	argsSeed7 := []string{"synth", "-elements", "1000", "-out", "1000", "-iters", "10", "-cycles", "5000",
		"-faults", "crc=0.1,upset=0.1", "-fault-seed", "7", "-fault-policy", "retries=10,backoff=10us"}
	if _, out3, _ := runSim(t, argsSeed7...); out1 == out3 {
		t.Error("different fault seeds produced identical output")
	}
	// Fault-free runs must not print the summary line.
	if _, clean, _ := runSim(t, "synth", "-elements", "1000", "-out", "1000"); strings.Contains(clean, "faults  =") {
		t.Errorf("fault summary printed on a fault-free run:\n%s", clean)
	}
}

// TestRunTraceAndEvents is the acceptance check for the telemetry
// subsystem: a pdf1d run must produce a valid Chrome trace-event JSON
// file and a JSONL event log whose summed span durations agree with
// the run's RC execution time to within 1e-9 s.
func TestRunTraceAndEvents(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.json")
	eventsFile := filepath.Join(dir, "e.jsonl")
	code, out, errOut := runSim(t, "run", "-case", "pdf1d", "-trace", traceFile, "-events", eventsFile)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "t_RC") {
		t.Fatalf("run output:\n%s", out)
	}

	// The printed t_RC comes from this deterministic measurement.
	m, err := rcsim.Run(pdf1d.Scenario(core.MHz(150), core.SingleBuffered))
	if err != nil {
		t.Fatal(err)
	}
	if want := report.FormatSci(m.TRC()); !strings.Contains(out, want) {
		t.Errorf("printed t_RC does not match the reference run %s:\n%s", want, out)
	}

	// JSONL event log: re-parse and sum span durations.
	ef, err := os.Open(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	events, err := telemetry.ReadEvents(ef)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event log")
	}
	var eventSum float64
	for _, e := range events {
		eventSum += e.DurationSeconds()
	}
	if diff := math.Abs(eventSum - m.TRC()); diff > 1e-9 {
		t.Errorf("summed event durations %.12g s vs t_RC %.12g s (diff %g > 1e-9)", eventSum, m.TRC(), diff)
	}

	// Chrome trace: must re-parse as trace-event JSON, and its
	// complete-event durations must sum to the same total.
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var spanSumUs float64
	spans := 0
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" {
			spans++
			spanSumUs += e.Dur
		}
	}
	if spans != len(events) {
		t.Errorf("trace has %d spans, event log has %d events", spans, len(events))
	}
	if diff := math.Abs(spanSumUs/1e6 - m.TRC()); diff > 1e-9 {
		t.Errorf("summed trace durations %.12g s vs t_RC %.12g s (diff %g > 1e-9)", spanSumUs/1e6, m.TRC(), diff)
	}
}

func TestRunMetricsAndProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, out, errOut := runSim(t, "run", "-case", "pdf1d", "-metrics", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"metrics:", "counter rcsim.runs", "gauge   rcsim.t_rc_seconds", "timer   ratsim.sim_wall"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	for _, f := range []string{cpu, mem} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", f, err)
		}
	}
}

func TestSynthTraceEventsMetrics(t *testing.T) {
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "synth.json")
	eventsFile := filepath.Join(dir, "synth.jsonl")
	code, out, _ := runSim(t, "synth", "-elements", "1024", "-out", "1024", "-iters", "4",
		"-double", "-trace", traceFile, "-events", eventsFile, "-metrics")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "counter rcsim.iterations") {
		t.Errorf("synth metrics missing:\n%s", out)
	}
	ef, err := os.Open(eventsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	events, err := telemetry.ReadEvents(ef)
	if err != nil {
		t.Fatal(err)
	}
	swaps := 0
	for _, e := range events {
		if e.Kind == telemetry.EventBufferSwap {
			swaps++
		}
	}
	if swaps == 0 {
		t.Error("double-buffered synth run emitted no buffer-swap events")
	}
	if raw, err := os.ReadFile(traceFile); err != nil || !json.Valid(raw) {
		t.Errorf("trace file invalid (err %v)", err)
	}
}
