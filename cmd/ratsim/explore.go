package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/worksheet"
)

// cmdExplore runs the design-space exploration engine over a grid
// described on the command line, around either a paper case study or a
// JSON worksheet.
func cmdExplore(args []string, out io.Writer) error {
	fs := newFlagSet("explore")
	study := fs.String("case", "pdf1d", "base worksheet: pdf1d, pdf2d or md")
	wsFile := fs.String("worksheet", "", "JSON worksheet file as the base (overrides -case)")
	clocks := fs.String("clocks", "", "clock axis in MHz, e.g. 75,100,150")
	tps := fs.String("tp", "", "throughput_proc axis (ops/cycle), e.g. 10,20,40")
	alphas := fs.String("alphas", "", "interconnect-efficiency axis in (0,1], e.g. 0.16,0.37")
	blocks := fs.String("blocks", "", "block-size axis (elements per iteration), e.g. 512,2048")
	devices := fs.String("devices", "", "device-count axis, e.g. 1,2,4")
	topo := fs.String("topology", "shared", "multi-FPGA topology: shared or independent")
	buf := fs.String("buffering", "both", "buffering axis: single, double or both")
	objective := fs.String("objective", "max-speedup", "ranking: max-speedup, min-trc or min-cost")
	minSpeedup := fs.Float64("min-speedup", 0, "feasibility: minimum predicted speedup")
	maxTRC := fs.Float64("max-trc", 0, "feasibility: maximum t_RC in seconds")
	maxUtilComm := fs.Float64("max-util-comm", 0, "feasibility: maximum communication utilization")
	maxDevices := fs.Int("max-devices", 0, "feasibility: maximum device count")
	top := fs.Int("top", 10, "how many best candidates to report")
	workers := fs.Int("workers", 0, "worker count (0 = all CPUs; any value gives identical results)")
	jsonl := fs.Bool("jsonl", false, "emit candidates as JSONL instead of a table")
	frontier := fs.Bool("frontier", false, "also report the Pareto frontier")
	metrics := fs.Bool("metrics", false, "print the engine's telemetry after the run")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}

	base, err := exploreBase(*study, *wsFile)
	if err != nil {
		return err
	}
	g := explore.Grid{Base: base}
	if g.Clocks, err = parseFloats(*clocks, "-clocks", core.MHz); err != nil {
		return err
	}
	if g.ThroughputProcs, err = parseFloats(*tps, "-tp", nil); err != nil {
		return err
	}
	if g.Alphas, err = parseFloats(*alphas, "-alphas", nil); err != nil {
		return err
	}
	if g.BlockSizes, err = parseInt64s(*blocks, "-blocks"); err != nil {
		return err
	}
	devs, err := parseInt64s(*devices, "-devices")
	if err != nil {
		return err
	}
	for _, d := range devs {
		g.Devices = append(g.Devices, int(d))
	}
	switch *topo {
	case "shared":
		g.Topology = core.SharedChannel
	case "independent":
		g.Topology = core.IndependentChannels
	default:
		return fmt.Errorf("%w: unknown topology %q (want shared or independent)", cli.ErrUsage, *topo)
	}
	switch *buf {
	case "both":
	case "single":
		g.Bufferings = []core.Buffering{core.SingleBuffered}
	case "double":
		g.Bufferings = []core.Buffering{core.DoubleBuffered}
	default:
		return fmt.Errorf("%w: unknown buffering %q (want single, double or both)", cli.ErrUsage, *buf)
	}

	obj, err := explore.ParseObjective(*objective)
	if err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	opts := explore.Options{
		Workers:   *workers,
		TopK:      *top,
		Objective: obj,
		Constraints: explore.Constraints{
			MinSpeedup:  *minSpeedup,
			MaxTRC:      *maxTRC,
			MaxUtilComm: *maxUtilComm,
			MaxDevices:  *maxDevices,
		},
	}
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
		opts.Metrics = reg
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}

	res, err := explore.Run(g, opts)
	if err != nil {
		return err
	}

	if *jsonl {
		if err := explore.WriteJSONL(out, "top", res.Top); err != nil {
			return err
		}
		if *frontier {
			if err := explore.WriteJSONL(out, "frontier", res.Frontier); err != nil {
				return err
			}
		}
	} else {
		fmt.Fprintf(out, "explored %d candidates (%d feasible) with %d workers in %v (%.3g candidates/s)\n\n",
			res.Evaluated, res.Feasible, res.Workers, res.Elapsed.Round(time.Microsecond), res.CandidatesPerSec)
		if err := renderCandidates(out, fmt.Sprintf("top %d by %s", len(res.Top), obj), res.Top); err != nil {
			return err
		}
		if *frontier {
			fmt.Fprintln(out)
			if err := renderCandidates(out, fmt.Sprintf("Pareto frontier (%d candidates)", len(res.Frontier)), res.Frontier); err != nil {
				return err
			}
		}
	}
	if reg != nil {
		fmt.Fprintln(out, "\nmetrics:")
		return telemetry.WriteText(out, reg.Snapshot())
	}
	return nil
}

// exploreBase resolves the grid's base worksheet from the flags.
func exploreBase(study, wsFile string) (core.Parameters, error) {
	if wsFile != "" {
		f, err := os.Open(wsFile)
		if err != nil {
			return core.Parameters{}, err
		}
		defer f.Close()
		p, err := worksheet.DecodeJSON(f)
		if err != nil {
			return core.Parameters{}, fmt.Errorf("worksheet %s: %w", wsFile, err)
		}
		return p, nil
	}
	switch study {
	case "pdf1d":
		return paper.PDF1DParams(), nil
	case "pdf2d":
		return paper.PDF2DParams(), nil
	case "md":
		return paper.MDParams(), nil
	}
	return core.Parameters{}, fmt.Errorf("%w: unknown case study %q", cli.ErrUsage, study)
}

// parseFloats parses a comma-separated float list; empty means an
// unset axis. conv, when non-nil, converts each entry's unit.
func parseFloats(s, flagName string, conv func(float64) float64) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad %s entry %q", cli.ErrUsage, flagName, part)
		}
		if conv != nil {
			v = conv(v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInt64s parses a comma-separated integer list; empty means an
// unset axis.
func parseInt64s(s, flagName string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad %s entry %q", cli.ErrUsage, flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// renderCandidates prints candidates as a report table.
func renderCandidates(out io.Writer, title string, cands []explore.Candidate) error {
	tbl := report.Table{
		Title: title,
		Headers: []string{"#", "MHz", "tp", "alpha w/r", "block", "iters",
			"dev", "buffering", "t_RC", "speedup", "util c/c"},
	}
	for _, c := range cands {
		tbl.AddRow(
			fmt.Sprintf("%d", c.Index),
			fmt.Sprintf("%g", c.ClockHz/1e6),
			fmt.Sprintf("%g", c.ThroughputProc),
			fmt.Sprintf("%.2f/%.2f", c.AlphaWrite, c.AlphaRead),
			fmt.Sprintf("%d", c.ElementsIn),
			fmt.Sprintf("%d", c.Iterations),
			fmt.Sprintf("%d", c.Devices),
			c.Buffering.String(),
			report.FormatSci(c.TRC),
			fmt.Sprintf("%.2f", c.Speedup),
			fmt.Sprintf("%s/%s", report.FormatPercent(c.UtilComm), report.FormatPercent(c.UtilComp)),
		)
	}
	return tbl.Render(out)
}
