// Command ratsim runs the simulated RC platforms directly: case-study
// scenarios with timelines, interconnect microbenchmarks, and ad-hoc
// synthetic scenarios — the reproduction's stand-in for putting a
// design on the bench.
//
// Usage:
//
//	ratsim run -case pdf1d [-mhz 150] [-double] [-devices 2] [-gantt]
//	ratsim run -case pdf1d -trace out.json -events out.jsonl -metrics
//	ratsim run -case pdf1d -faults crc=0.01,upset=0.001 -fault-seed 7 -fault-policy retries=5
//	ratsim microbench [-platform nallatech] [-sizes 256,2048,262144]
//	ratsim synth -elements 4096 -out 4096 -bytes 4 -iters 10 -cycles 20000 [-mhz 100] [-double] [-gantt]
//	ratsim explore -case pdf1d -clocks 75,100,150 -tp 10,20,40 -alphas 0.16,0.37 -top 10 -frontier
//
// The -trace flag exports a Chrome trace_event JSON file loadable in
// chrome://tracing or Perfetto; -events writes a JSONL event log;
// -metrics prints the telemetry registry after the run; -cpuprofile
// and -memprofile write runtime/pprof profiles. See
// docs/OBSERVABILITY.md. The -faults, -fault-seed and -fault-policy
// flags inject deterministic platform faults; see docs/FAULTS.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/chrec/rat/internal/apps/md"
	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/apps/pdf2d"
	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/fault"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point. Exit codes follow the shared
// contract of package cli: 0 success, 1 runtime failure, 2 usage.
func run(args []string, out, errOut io.Writer) int {
	if len(args) < 1 {
		usage(errOut)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], out, errOut)
	case "microbench":
		err = cmdMicrobench(args[1:], out)
	case "synth":
		err = cmdSynth(args[1:], out)
	case "explore":
		err = cmdExplore(args[1:], out)
	case "-h", "-help", "--help", "help":
		usage(out)
	default:
		fmt.Fprintf(errOut, "ratsim: unknown command %q\n", args[0])
		usage(errOut)
		return 2
	}
	if err != nil {
		fmt.Fprintf(errOut, "ratsim: %v\n", err)
		if errors.Is(err, cli.ErrUsage) {
			usage(errOut)
		}
	}
	return cli.Code(err)
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  ratsim run -case pdf1d|pdf2d|md [-mhz 150] [-double] [-gantt] [observability flags]
  ratsim microbench [-platform nallatech|xd1000] [-sizes 256,2048,262144]
  ratsim synth -elements N -out N -bytes N -iters N -cycles N [-mhz 100] [-double] [-devices N] [-gantt] [observability flags]
  ratsim explore [-case pdf1d | -worksheet f.json] [-clocks 75,100,150] [-tp 10,20,40]
                 [-alphas 0.16,0.37] [-blocks 512,2048] [-devices 1,2,4] [-topology shared|independent]
                 [-buffering single|double|both] [-objective max-speedup|min-trc|min-cost]
                 [-min-speedup X] [-max-trc S] [-max-util-comm F] [-max-devices N]
                 [-top 10] [-workers 0] [-frontier] [-jsonl] [-metrics]

observability flags (see docs/OBSERVABILITY.md):
  -trace out.json    export a Chrome trace-event file (chrome://tracing, Perfetto)
  -events out.jsonl  write a JSONL event log of every transfer/compute/buffer swap
  -metrics           print the telemetry registry after the run
  -cpuprofile f      write a runtime/pprof CPU profile
  -memprofile f      write a runtime/pprof heap profile

fault-injection flags for run and synth (see docs/FAULTS.md):
  -faults spec       inject faults, e.g. crc=0.01,dma=0.002,upset=0.001,dropout=0.0005
  -fault-seed N      deterministic fault-pattern seed (default 1)
  -fault-policy spec recovery policy, e.g. retries=5,backoff=20us,growth=2,failfast
`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func buffering(double bool) core.Buffering {
	if double {
		return core.DoubleBuffered
	}
	return core.SingleBuffered
}

// faultFlags holds the fault-injection options shared by run and synth.
type faultFlags struct {
	spec   string
	seed   uint64
	policy string
}

func addFaultFlags(fs *flag.FlagSet) *faultFlags {
	f := &faultFlags{}
	fs.StringVar(&f.spec, "faults", "", "fault rates, e.g. crc=0.01,dma=0.002 (docs/FAULTS.md)")
	fs.Uint64Var(&f.seed, "fault-seed", 1, "deterministic fault-pattern seed")
	fs.StringVar(&f.policy, "fault-policy", "", "recovery policy, e.g. retries=5,backoff=20us,failfast")
	return f
}

// plan builds the fault plan the flags describe; nil when no faults
// were requested. Malformed specs are usage errors.
func (f *faultFlags) plan() (*fault.Plan, error) {
	if f.spec == "" {
		if f.policy != "" {
			return nil, fmt.Errorf("%w: -fault-policy is set but -faults is not", cli.ErrUsage)
		}
		return nil, nil
	}
	pl, err := fault.ParseRates(f.spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	pol, err := fault.ParsePolicy(f.policy)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	pl.Seed = f.seed
	pl.Policy = pol
	return &pl, nil
}

// obsFlags holds the observability options shared by run and synth.
type obsFlags struct {
	traceOut   string
	eventsOut  string
	metrics    bool
	cpuProfile string
	memProfile string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.traceOut, "trace", "", "write a Chrome trace-event JSON file")
	fs.StringVar(&o.eventsOut, "events", "", "write a JSONL event log")
	fs.BoolVar(&o.metrics, "metrics", false, "print the metrics registry after the run")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile")
	return o
}

// startProfiles begins CPU profiling if requested and returns a stop
// function that finishes both profiles.
func (o *obsFlags) startProfiles() (func() error, error) {
	var cpuF *os.File
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile %s: %w", o.cpuProfile, err)
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if o.memProfile != "" {
			f, err := os.Create(o.memProfile)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// instrument attaches a full-run trace recorder and/or event sink to
// the scenario as the flags demand. The returned finish function must
// run after the simulation: it exports the trace file and flushes the
// event log.
func (o *obsFlags) instrument(sc *rcsim.Scenario) (finish func() error, err error) {
	var rec *trace.Recorder
	if o.traceOut != "" {
		if sc.Trace == nil {
			sc.Trace = &trace.Recorder{}
		}
		rec = sc.Trace
	}
	var (
		eventsFile *os.File
		sink       *telemetry.WriterSink
	)
	if o.eventsOut != "" {
		eventsFile, err = os.Create(o.eventsOut)
		if err != nil {
			return nil, fmt.Errorf("event log: %w", err)
		}
		sink = telemetry.NewWriterSink(eventsFile)
		sc.Events = sink
	}
	return func() error {
		if sink != nil {
			err := sink.Err()
			if cerr := eventsFile.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("event log %s: %w", o.eventsOut, err)
			}
		}
		if rec != nil {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return fmt.Errorf("chrome trace: %w", err)
			}
			if err := telemetry.WriteChromeTrace(f, rec.Spans()); err != nil {
				f.Close()
				return fmt.Errorf("chrome trace %s: %w", o.traceOut, err)
			}
			return f.Close()
		}
		return nil
	}, nil
}

// printMetrics records the measurement and the simulation's wall time
// into a fresh registry and prints it.
func printMetrics(out io.Writer, m rcsim.Measurement, wall time.Duration) error {
	reg := telemetry.NewRegistry()
	reg.Timer("ratsim.sim_wall").Observe(wall)
	m.RecordMetrics(reg)
	fmt.Fprintln(out, "\nmetrics:")
	return telemetry.WriteText(out, reg.Snapshot())
}

func printMeasurement(out io.Writer, m rcsim.Measurement, tSoft float64, rec *trace.Recorder, gantt bool) {
	fmt.Fprintf(out, "t_comm  = %s s/iter\n", report.FormatSci(m.TComm()))
	fmt.Fprintf(out, "t_comp  = %s s/iter\n", report.FormatSci(m.TComp()))
	fmt.Fprintf(out, "t_RC    = %s s (%d iterations, %s)\n", report.FormatSci(m.TRC()), m.Scenario.Iterations, m.Scenario.Buffering)
	fmt.Fprintf(out, "util    = %s comm / %s comp\n", report.FormatPercent(m.UtilComm()), report.FormatPercent(m.UtilComp()))
	if tSoft > 0 {
		fmt.Fprintf(out, "speedup = %.2f over t_soft %.3g s\n", m.Speedup(tSoft), tSoft)
	}
	if m.Scenario.Faults.Enabled() {
		fmt.Fprintf(out, "faults  = %d retries, %d failovers, %s s lost (%s of runtime)\n",
			m.Retries, m.Failovers, report.FormatSci(m.FaultTime.Seconds()), report.FormatPercent(m.UtilFault()))
	}
	if gantt && rec != nil {
		fmt.Fprintln(out)
		fmt.Fprint(out, rec.Gantt(96))
	}
}

func cmdRun(args []string, out, errOut io.Writer) error {
	fs := newFlagSet("run")
	study := fs.String("case", "pdf1d", "case study: pdf1d, pdf2d or md")
	mhz := fs.Float64("mhz", 150, "FPGA clock (MHz)")
	double := fs.Bool("double", false, "double-buffered overlap")
	gantt := fs.Bool("gantt", false, "print the activity timeline (first iterations)")
	obs := addObsFlags(fs)
	flts := addFaultFlags(fs)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	plan, err2 := flts.plan()
	if err2 != nil {
		return err2
	}
	b := buffering(*double)
	var (
		sc    rcsim.Scenario
		tSoft float64
		err   error
	)
	switch *study {
	case "pdf1d":
		sc = pdf1d.Scenario(core.MHz(*mhz), b)
		tSoft = paper.PDF1DParams().Soft.TSoft
	case "pdf2d":
		sc = pdf2d.Scenario(core.MHz(*mhz), b)
		tSoft = paper.PDF2DParams().Soft.TSoft
	case "md":
		fmt.Fprintln(errOut, "ratsim: generating the 16384-molecule dataset...")
		sys := md.GenerateSystem(md.Molecules, 1)
		sc, err = md.Scenario(sys, core.MHz(*mhz), b)
		if err != nil {
			return err
		}
		tSoft = paper.MDTSoft
	default:
		return fmt.Errorf("%w: unknown case study %q", cli.ErrUsage, *study)
	}
	sc.Faults = plan
	var rec *trace.Recorder
	if *gantt {
		// Tracing 400 iterations is unreadable; run a short prefix
		// for the picture, then the full scenario for numbers.
		short := sc
		if short.Iterations > 4 {
			short.Iterations = 4
		}
		rec = &trace.Recorder{}
		short.Trace = rec
		if _, err := rcsim.Run(short); err != nil {
			return err
		}
	}
	stopProf, err := obs.startProfiles()
	if err != nil {
		return err
	}
	finish, err := obs.instrument(&sc)
	if err != nil {
		stopProf()
		return err
	}
	simStart := time.Now()
	m, err := rcsim.Run(sc)
	wall := time.Since(simStart)
	if ferr := finish(); err == nil {
		err = ferr
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "case %s on %s at %g MHz\n\n", *study, sc.Platform.Name, *mhz)
	printMeasurement(out, m, tSoft, rec, *gantt)
	if obs.metrics {
		return printMetrics(out, m, wall)
	}
	return nil
}

func cmdMicrobench(args []string, out io.Writer) error {
	fs := newFlagSet("microbench")
	plat := fs.String("platform", "nallatech", "platform name")
	sizesArg := fs.String("sizes", "256,512,1024,2048,4096,16384,65536,262144,1048576", "transfer sizes in bytes")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	p, ok := platform.ByName(*plat)
	if !ok {
		return fmt.Errorf("%w: unknown platform %q", cli.ErrUsage, *plat)
	}
	var sizes []int64
	for _, s := range strings.Split(*sizesArg, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("%w: bad -sizes entry %q (want positive byte counts)", cli.ErrUsage, s)
		}
		sizes = append(sizes, v)
	}
	ic := p.Interconnect
	tbl := report.Table{
		Title:   fmt.Sprintf("%s: %s (ideal %g MB/s)", p.Name, ic.Name, ic.IdealBps/1e6),
		Headers: []string{"Bytes", "write time", "alpha_write", "read time", "alpha_read"},
	}
	for _, s := range sizes {
		tbl.AddRow(fmt.Sprintf("%d", s),
			report.FormatSci(ic.TransferTime(platform.Write, s, false).Seconds()),
			fmt.Sprintf("%.3f", ic.MeasureAlpha(platform.Write, s)),
			report.FormatSci(ic.TransferTime(platform.Read, s, false).Seconds()),
			fmt.Sprintf("%.3f", ic.MeasureAlpha(platform.Read, s)))
	}
	return tbl.Render(out)
}

func cmdSynth(args []string, out io.Writer) error {
	fs := newFlagSet("synth")
	elements := fs.Int("elements", 4096, "input elements per iteration")
	outEls := fs.Int("out", 4096, "output elements per iteration")
	bytesPer := fs.Int("bytes", 4, "bytes per element")
	iters := fs.Int("iters", 10, "iterations")
	cycles := fs.Int64("cycles", 20000, "kernel cycles per iteration")
	mhz := fs.Float64("mhz", 100, "FPGA clock (MHz)")
	plat := fs.String("platform", "nallatech", "platform name")
	double := fs.Bool("double", false, "double-buffered overlap")
	devices := fs.Int("devices", 1, "FPGA count (multi-device fan-out)")
	gantt := fs.Bool("gantt", false, "print the activity timeline")
	obs := addObsFlags(fs)
	flts := addFaultFlags(fs)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	plan, err := flts.plan()
	if err != nil {
		return err
	}
	p, ok := platform.ByName(*plat)
	if !ok {
		return fmt.Errorf("%w: unknown platform %q", cli.ErrUsage, *plat)
	}
	sc := rcsim.Scenario{
		Name:            "synthetic",
		Platform:        p,
		ClockHz:         core.MHz(*mhz),
		Buffering:       buffering(*double),
		Iterations:      *iters,
		ElementsIn:      *elements,
		ElementsOut:     *outEls,
		BytesPerElement: *bytesPer,
		KernelCycles:    func(int, int) int64 { return *cycles },
		Faults:          plan,
	}
	// Bad dimension flags are usage errors: validate before running so
	// they exit 2 with the usage text instead of 1.
	if *devices < 1 {
		return fmt.Errorf("%w: device count must be >= 1 (got %d)", cli.ErrUsage, *devices)
	}
	if *devices > 1 {
		ms := rcsim.MultiScenario{Scenario: sc, Devices: *devices, Topology: core.SharedChannel}
		if err := ms.Validate(); err != nil {
			return fmt.Errorf("%w: %w", cli.ErrUsage, err)
		}
	} else if err := sc.Validate(); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	if *gantt {
		sc.Trace = &trace.Recorder{}
	}
	stopProf, err := obs.startProfiles()
	if err != nil {
		return err
	}
	finish, err := obs.instrument(&sc)
	if err != nil {
		stopProf()
		return err
	}
	var m rcsim.Measurement
	simStart := time.Now()
	if *devices > 1 {
		m, err = rcsim.RunMulti(rcsim.MultiScenario{
			Scenario: sc, Devices: *devices, Topology: core.SharedChannel,
		})
	} else {
		m, err = rcsim.Run(sc)
	}
	wall := time.Since(simStart)
	if ferr := finish(); err == nil {
		err = ferr
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "synthetic scenario on %s at %g MHz (%d device(s))\n\n", p.Name, *mhz, *devices)
	printMeasurement(out, m, 0, sc.Trace, *gantt)
	if obs.metrics {
		return printMetrics(out, m, wall)
	}
	return nil
}
