package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/server"
	"github.com/chrec/rat/internal/worksheet"
)

// TestLoadAgainstServer drives a short closed-loop run against an
// in-process ratd serving core and checks the report: all requests
// answered 200 and a complete latency histogram printed.
func TestLoadAgainstServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-url", ts.URL,
		"-c", "4",
		"-duration", "300ms",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "HTTP 200:") {
		t.Errorf("report lacks HTTP 200 line:\n%s", report)
	}
	if !strings.Contains(report, "latency histogram") {
		t.Errorf("report lacks the latency histogram:\n%s", report)
	}
	if !strings.Contains(report, "latency: mean") {
		t.Errorf("report lacks latency summary:\n%s", report)
	}
}

// TestLoadPaced: QPS pacing still completes and reports.
func TestLoadPaced(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-url", ts.URL,
		"-c", "2",
		"-qps", "200",
		"-duration", "250ms",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "paced to 200 qps") {
		t.Errorf("report does not mention pacing:\n%s", out.String())
	}
}

// TestLoadWorksheetFile: a custom worksheet file is validated and
// used; a broken one fails before the run starts.
func TestLoadWorksheetFile(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "md.json")
	var buf bytes.Buffer
	if err := worksheet.EncodeJSON(&buf, paper.MDParams()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-url", ts.URL, "-c", "1", "-duration", "100ms", "-worksheet", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-url", ts.URL, "-worksheet", bad}, &out, &errOut); code != 1 {
		t.Errorf("broken worksheet: exit code %d, want 1", code)
	}
}

// TestLoadWireBinary: -wire binary drives the whole run over the
// compact frames, printing the pre-flight parity line first. The
// parity line is the CI server-smoke job's assertion surface, so its
// exact text is pinned here.
func TestLoadWireBinary(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-url", ts.URL,
		"-c", "2",
		"-n", "10",
		"-duration", "30s",
		"-wire", "binary",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "wire parity: json and binary predictions identical") {
		t.Errorf("report lacks the parity line:\n%s", report)
	}
	if !strings.Contains(report, "HTTP 200:") {
		t.Errorf("report lacks HTTP 200 line:\n%s", report)
	}
}

// TestLoadWireBinaryMulti: the parity pre-flight also covers the
// multi-FPGA response shape when devices/topology are set.
func TestLoadWireBinaryMulti(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-url", ts.URL,
		"-c", "1",
		"-n", "4",
		"-duration", "30s",
		"-wire", "binary",
		"-devices", "3",
		"-topology", "independent",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wire parity: json and binary predictions identical") {
		t.Errorf("report lacks the parity line:\n%s", out.String())
	}
}

// TestLoadUsageErrors: flag mistakes exit 2.
func TestLoadUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray"},
		{"-c", "0"},
		{"-duration", "-1s"},
		{"-qps", "-5"},
		{"-url", "not a url"},
		{"-wire", "xml"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) = %d, want 2\nstderr: %s", args, code, errOut.String())
		}
	}
}

// TestLoadUnreachableServer: a dead endpoint is a runtime failure.
func TestLoadUnreachableServer(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-url", "http://127.0.0.1:1", // port 1: nothing listens there
		"-c", "1",
		"-duration", "100ms",
	}, &out, &errOut)
	if code != 1 {
		t.Errorf("exit code %d for unreachable server, want 1", code)
	}
	if !strings.Contains(errOut.String(), "transport errors") {
		t.Errorf("stderr lacks transport-error report: %s", errOut.String())
	}
}

// TestLoadRequestBudget: -n stops the run after exactly that many
// requests even with duration to spare.
func TestLoadRequestBudget(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	start := time.Now()
	code := run([]string{
		"-url", ts.URL,
		"-c", "4",
		"-n", "25",
		"-duration", "30s",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("budgeted run took %v, should stop well before -duration", elapsed)
	}
	if !strings.Contains(out.String(), "ratload: 25 requests") {
		t.Errorf("report does not show exactly 25 requests:\n%s", out.String())
	}
}

// TestLoadTraceSampling: with -traces every request is traced; the
// report proves round-trip propagation and prints the slowest traces
// with their per-stage breakdowns.
func TestLoadTraceSampling(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var out, errOut bytes.Buffer
	code := run([]string{
		"-url", ts.URL,
		"-c", "2",
		"-n", "20",
		"-traces", "3",
		"-duration", "30s",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "traces: 20/20 echoed by the server") {
		t.Errorf("report lacks the full echo tally:\n%s", report)
	}
	if !strings.Contains(report, "slowest 3 traces") {
		t.Errorf("report lacks the slowest-traces section:\n%s", report)
	}
	if n := strings.Count(report, "trace="); n != 3 {
		t.Errorf("report prints %d trace lines, want 3:\n%s", n, report)
	}
	for _, stage := range []string{"admission=", "cache=", "kernel="} {
		if !strings.Contains(report, stage) {
			t.Errorf("trace lines lack the %s breakdown:\n%s", stage, report)
		}
	}
}

// TestLoadTraceFlagValidation: negative budgets and trace counts are
// usage errors.
func TestLoadTraceFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "-1"},
		{"-traces", "-2"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}
}
