// Command ratload is a closed-loop load generator for ratd. Each of
// -c workers posts a worksheet to /v1/predict, waits for the answer,
// and posts again — optionally paced to an aggregate -qps by a shared
// token ticker. Latencies feed a telemetry histogram and timer; the
// report prints achieved throughput, the status-class breakdown and
// the latency distribution.
//
// Usage:
//
//	ratload -url http://127.0.0.1:8080 -c 8 -duration 10s
//	ratload -url http://127.0.0.1:8080 -qps 500 -c 16 -duration 30s
//	ratload -url http://127.0.0.1:8080 -worksheet design.json -devices 2
//	ratload -url http://127.0.0.1:8080 -n 100 -traces 5
//	ratload -url http://127.0.0.1:8080 -wire binary -duration 10s
//	ratload -url http://127.0.0.1:8080 -key K1 -qps 50
//	ratload -url http://127.0.0.1:8080 -mix noisy-neighbor \
//	    -key-compliant K1 -key-hostile K2 -duration 10s
//	ratload -url http://127.0.0.1:8080 \
//	    -distributed http://127.0.0.1:8081,http://127.0.0.1:8082 -rounds 5
//
// With -n the run stops after that many requests even if -duration has
// time left. With -traces N every request carries an X-Rat-Trace header
// and asks for the server's per-stage breakdown (X-Rat-Stages); the
// report then prints the N slowest requests with their trace IDs and
// stage timings, plus how many trace IDs the server echoed back — a
// quick end-to-end check that tracing is wired through.
//
// With -wire binary every request and response uses ratd's compact
// binary wire format (application/x-rat-bin) instead of JSON. Before
// the measured run starts, ratload sends the worksheet once in each
// format and proves the two predictions are bit-for-bit identical,
// printing a stable "wire parity:" line that CI greps.
//
// With -key every request carries the key as Authorization: Bearer,
// for servers started with ratd -tenants. With -mix, ratload instead
// drives two tenants at once — a compliant one paced inside its quota
// (-compliant-qps) and a hostile one shaped by the mix name: flat-out
// closed loop far above quota (noisy-neighbor), synchronized bursts on
// a shared boundary (thundering-herd), or paced right at the bucket's
// refill rate with periodic doubles probing the edge (quota-edge). The
// report then adds one stable line per tenant (requests, ok,
// rejected_429, p50/p99) that CI greps to assert isolation: the
// compliant tenant must see zero 429s while the hostile one is shed.
// -n, -qps and -traces apply only to single-tenant runs.
//
// With -distributed, ratload instead drives the coordinator's
// POST /v1/explore/distributed: -rounds identical explore requests
// sharded across the listed worker fleet, every response's counts and
// candidates byte-compared against the first (run telemetry — elapsed
// time, per-worker shard tallies — is stripped, since it legitimately
// varies). The stable "distributed parity:"
// line is the assertion surface — any divergence means the merge
// leaked scheduling order, which the determinism contract
// (docs/DISTRIBUTED.md) forbids.
//
// Exit codes: 0 when the run completes and every request got an HTTP
// response (any status), 1 on runtime failure (unreachable server,
// transport errors), 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/obs"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/wire"
	"github.com/chrec/rat/internal/worksheet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// latencyBounds are the histogram bucket upper bounds in seconds,
// log-spaced from 100us to ~13s.
var latencyBounds = []float64{
	0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005,
	0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 13,
}

func run(args []string, out, errOut io.Writer) int {
	err := load(args, out)
	if err != nil {
		fmt.Fprintf(errOut, "ratload: %v\n", err)
		if cli.Code(err) == 2 {
			fmt.Fprintln(errOut, "usage: ratload -url http://host:port [-qps N] [-c N] [-duration D] [-worksheet file]")
		}
	}
	return cli.Code(err)
}

func load(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ratload", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	baseURL := fs.String("url", "http://127.0.0.1:8080", "ratd base URL")
	qps := fs.Float64("qps", 0, "aggregate request rate (0 = unpaced closed loop)")
	conc := fs.Int("c", 4, "concurrent closed-loop workers")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	worksheetPath := fs.String("worksheet", "", "worksheet JSON file (default: the paper's 1-D PDF worksheet)")
	devices := fs.Int("devices", 1, "devices query parameter")
	topology := fs.String("topology", "", "topology query parameter (shared, independent)")
	reqTimeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	budget := fs.Int64("n", 0, "total request budget (0 = duration-bound only)")
	wireFmt := fs.String("wire", "json", "wire format: json or binary (application/x-rat-bin)")
	traces := fs.Int("traces", 0, "trace every request, report the N slowest with stage breakdowns (0 disables)")
	apiKey := fs.String("key", "", "API key sent as Authorization: Bearer (tenanted servers)")
	mix := fs.String("mix", "", "adversarial two-tenant mix: noisy-neighbor, thundering-herd or quota-edge")
	keyCompliant := fs.String("key-compliant", "", "compliant tenant's API key (required with -mix)")
	keyHostile := fs.String("key-hostile", "", "hostile tenant's API key (required with -mix)")
	compliantQPS := fs.Float64("compliant-qps", 20, "paced request rate of the compliant tenant in a -mix run")
	distributed := fs.String("distributed", "", "comma-separated worker URLs: repeat a distributed explore via -url's /v1/explore/distributed and byte-compare the responses")
	rounds := fs.Int("rounds", 5, "identical requests per -distributed parity run")
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", fs.Arg(0))
	}
	if *conc < 1 {
		return cli.Usagef("-c must be at least 1 (got %d)", *conc)
	}
	if *duration <= 0 {
		return cli.Usagef("-duration must be positive (got %v)", *duration)
	}
	if *qps < 0 {
		return cli.Usagef("-qps must be non-negative (got %v)", *qps)
	}
	if *budget < 0 {
		return cli.Usagef("-n must be non-negative (got %d)", *budget)
	}
	if *traces < 0 {
		return cli.Usagef("-traces must be non-negative (got %d)", *traces)
	}
	if _, err := url.ParseRequestURI(*baseURL); err != nil {
		return cli.Usagef("-url: %v", err)
	}
	switch *wireFmt {
	case "json", "binary":
	default:
		return cli.Usagef("-wire %q: want json or binary", *wireFmt)
	}
	switch *mix {
	case "", "noisy-neighbor", "thundering-herd", "quota-edge":
	default:
		return cli.Usagef("-mix %q: want noisy-neighbor, thundering-herd or quota-edge", *mix)
	}
	if *mix != "" {
		if *keyCompliant == "" || *keyHostile == "" {
			return cli.Usagef("-mix requires both -key-compliant and -key-hostile")
		}
		if *apiKey != "" {
			return cli.Usagef("-key and -mix are mutually exclusive")
		}
		if *compliantQPS <= 0 {
			return cli.Usagef("-compliant-qps must be positive (got %v)", *compliantQPS)
		}
	}
	if *distributed != "" {
		if *mix != "" {
			return cli.Usagef("-distributed and -mix are mutually exclusive")
		}
		if *rounds < 1 {
			return cli.Usagef("-rounds must be at least 1 (got %d)", *rounds)
		}
	}

	var body []byte
	params := paper.PDF1DParams()
	if *worksheetPath == "" {
		var buf bytes.Buffer
		if err := worksheet.EncodeJSON(&buf, params); err != nil {
			return err
		}
		body = buf.Bytes()
	} else {
		b, err := os.ReadFile(*worksheetPath)
		if err != nil {
			return err
		}
		// Fail fast on a bad worksheet rather than measuring 400s.
		p, err := worksheet.DecodeJSON(bytes.NewReader(b))
		if err != nil {
			return fmt.Errorf("worksheet %s: %w", *worksheetPath, err)
		}
		params = p
		body = b
	}
	binary := *wireFmt == "binary"
	if binary {
		body = wire.AppendBinaryWorksheet(nil, params)
	}

	if *distributed != "" {
		return runDistributed(out, *baseURL, *distributed, *rounds, params, *reqTimeout, *apiKey)
	}

	target := strings.TrimSuffix(*baseURL, "/") + "/v1/predict"
	q := url.Values{}
	if *devices > 1 {
		q.Set("devices", fmt.Sprint(*devices))
	}
	if *topology != "" {
		q.Set("topology", *topology)
	}
	if len(q) > 0 {
		target += "?" + q.Encode()
	}

	if *mix != "" {
		return runMix(out, *mix, target, body, binary, *reqTimeout, *duration,
			*conc, *compliantQPS, *keyCompliant, *keyHostile)
	}

	reg := telemetry.NewRegistry()
	latHist := reg.Histogram("load.latency_seconds", latencyBounds)
	latTimer := reg.Timer("load.latency")
	var sent, transportErrs, taken atomic.Int64
	var statusMu sync.Mutex
	statuses := make(map[int]int64)
	var sampler *traceSampler
	if *traces > 0 {
		sampler = &traceSampler{}
	}

	// The pacer: with -qps, workers take a token per request from a
	// shared ticker; unpaced workers run flat out.
	var tokens <-chan time.Time
	if *qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *qps))
		defer t.Stop()
		tokens = t.C
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	client := &http.Client{Timeout: *reqTimeout}

	if binary {
		// Prove the two wire formats agree before measuring anything:
		// a binary run whose answers drifted from the JSON path would
		// be load-testing a bug.
		if err := wireParity(out, client, target, *apiKey, params, *devices > 1); err != nil {
			return err
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if *budget > 0 && taken.Add(1) > *budget {
					return
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
				if err != nil {
					transportErrs.Add(1)
					return
				}
				setWireHeaders(req, binary)
				if *apiKey != "" {
					req.Header.Set("Authorization", "Bearer "+*apiKey)
				}
				var traceHdr string
				if sampler != nil {
					traceHdr = obs.FormatTraceHeader(obs.NewTraceID(), obs.NewSpanID())
					req.Header.Set(obs.TraceHeader, traceHdr)
					req.Header.Set(obs.StagesHeader, "1")
				}
				sent.Add(1)
				t0 := time.Now()
				resp, err := client.Do(req)
				elapsed := time.Since(t0)
				if err != nil {
					if ctx.Err() != nil {
						sent.Add(-1) // cut short by the deadline, not a sample
						return
					}
					transportErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latHist.Observe(elapsed.Seconds())
				latTimer.Observe(elapsed)
				if sampler != nil {
					sampler.record(traceSample{
						trace:   traceHdr[:16], // the trace-ID half of the header
						latency: elapsed,
						stages:  resp.Header.Get(obs.StagesHeader),
						echoed:  resp.Header.Get(obs.TraceHeader) == traceHdr,
					})
				}
				statusMu.Lock()
				statuses[resp.StatusCode]++
				statusMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(out, reg, statuses, sent.Load(), transportErrs.Load(), elapsed, *conc, *qps)
	if sampler != nil {
		sampler.report(out, *traces)
	}
	if transportErrs.Load() > 0 {
		return fmt.Errorf("%d transport errors (is ratd up at %s?)", transportErrs.Load(), *baseURL)
	}
	return nil
}

// runMix drives the adversarial two-tenant mixes against a tenanted
// ratd: a compliant tenant paced inside its quota next to a hostile
// tenant shaped by the mix name. It exists to prove isolation, not to
// measure throughput — the per-tenant report lines are the assertion
// surface (CI greps the compliant tenant's rejected_429 field).
func runMix(out io.Writer, mode, target string, body []byte, binary bool,
	timeout, duration time.Duration, conc int, compliantQPS float64,
	keyCompliant, keyHostile string) error {

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	client := &http.Client{Timeout: timeout}

	compliant := &tenantLoad{name: "compliant", key: keyCompliant, binary: binary}
	hostile := &tenantLoad{name: "hostile", key: keyHostile, binary: binary}

	// The compliant tenant shares one ticker across its workers so its
	// aggregate rate stays at -compliant-qps no matter the worker
	// count; any 429 it sees is an isolation failure, not shedding.
	compTick := time.NewTicker(time.Duration(float64(time.Second) / compliantQPS))
	defer compTick.Stop()
	compWorkers := conc / 4
	if compWorkers < 1 {
		compWorkers = 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < compWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				select {
				case <-compTick.C:
				case <-ctx.Done():
					return
				}
				compliant.do(ctx, client, target, body)
			}
		}()
	}

	var hostileTick *time.Ticker
	if mode == "quota-edge" {
		// Paced to the compliant rate — presumed at or near the hostile
		// bucket's refill rate — with a double every fourth request to
		// probe the boundary accounting from just above.
		hostileTick = time.NewTicker(time.Duration(float64(time.Second) / compliantQPS))
		defer hostileTick.Stop()
	}
	const herdPeriod = 250 * time.Millisecond
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				switch mode {
				case "noisy-neighbor":
					// Flat-out closed loop, far above any sane quota.
					hostile.do(ctx, client, target, body)
				case "thundering-herd":
					// Every worker sleeps to the same period boundary,
					// then all fire a burst together.
					d := herdPeriod - time.Since(start)%herdPeriod
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
					for b := 0; b < 4 && ctx.Err() == nil; b++ {
						hostile.do(ctx, client, target, body)
					}
				case "quota-edge":
					select {
					case <-hostileTick.C:
					case <-ctx.Done():
						return
					}
					hostile.do(ctx, client, target, body)
					if i%4 == 3 {
						hostile.do(ctx, client, target, body)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Fprintf(out, "ratload: %s mix, %v, %d hostile + %d compliant workers (compliant paced to %.0f qps)\n",
		mode, elapsed.Round(time.Millisecond), conc, compWorkers, compliantQPS)
	compliant.report(out)
	hostile.report(out)
	if te := compliant.transport.Load() + hostile.transport.Load(); te > 0 {
		return fmt.Errorf("%d transport errors (is ratd up?)", te)
	}
	return nil
}

// setWireHeaders marks the request with the chosen wire format:
// JSON, or the compact binary frames on both sides of the exchange.
func setWireHeaders(req *http.Request, binary bool) {
	if binary {
		req.Header.Set("Content-Type", wire.ContentTypeBinary)
		req.Header.Set("Accept", wire.ContentTypeBinary)
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
}

// wireParity posts the run's worksheet once in each wire format and
// compares the decoded predictions with != — bit-for-bit, no
// tolerance. The printed line is stable: the CI server-smoke job
// greps it to assert the two encodings answer identically.
func wireParity(out io.Writer, client *http.Client, target, apiKey string,
	p core.Parameters, multi bool) error {

	var jbuf bytes.Buffer
	if err := worksheet.EncodeJSON(&jbuf, p); err != nil {
		return err
	}
	jsonBody, err := postOnce(client, target, apiKey, jbuf.Bytes(), false)
	if err != nil {
		return fmt.Errorf("wire parity (json): %w", err)
	}
	binBody, err := postOnce(client, target, apiKey, wire.AppendBinaryWorksheet(nil, p), true)
	if err != nil {
		return fmt.Errorf("wire parity (binary): %w", err)
	}
	if multi {
		var jm api.MultiPrediction
		if err := json.Unmarshal(jsonBody, &jm); err != nil {
			return fmt.Errorf("wire parity: decoding JSON response: %w", err)
		}
		bm, err := wire.DecodeBinaryMultiPrediction(binBody)
		if err != nil {
			return fmt.Errorf("wire parity: decoding binary response: %w", err)
		}
		if jm.Core() != bm.Core() {
			return fmt.Errorf("wire parity: multi predictions differ\n json  %+v\n binary %+v", jm.Core(), bm.Core())
		}
	} else {
		var jp api.Prediction
		if err := json.Unmarshal(jsonBody, &jp); err != nil {
			return fmt.Errorf("wire parity: decoding JSON response: %w", err)
		}
		bp, err := wire.DecodeBinaryPrediction(binBody)
		if err != nil {
			return fmt.Errorf("wire parity: decoding binary response: %w", err)
		}
		if jp.Core() != bp.Core() {
			return fmt.Errorf("wire parity: predictions differ\n json  %+v\n binary %+v", jp.Core(), bp.Core())
		}
	}
	fmt.Fprintln(out, "wire parity: json and binary predictions identical")
	return nil
}

// postOnce sends one request outside the measured run and returns the
// response body, treating anything but 200 as an error.
func postOnce(client *http.Client, target, apiKey string, body []byte, binary bool) ([]byte, error) {
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	setWireHeaders(req, binary)
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, b)
	}
	return b, nil
}

// tenantLoad tallies one tenant's stream in a mix run.
type tenantLoad struct {
	name   string
	key    string
	binary bool

	sent, ok, rejected, other, transport atomic.Int64

	mu   sync.Mutex
	lats []time.Duration
}

// do sends one request under the tenant's key and tallies the outcome.
func (t *tenantLoad) do(ctx context.Context, client *http.Client, target string, body []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		t.transport.Add(1)
		return
	}
	setWireHeaders(req, t.binary)
	req.Header.Set("Authorization", "Bearer "+t.key)
	t.sent.Add(1)
	t0 := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(t0)
	if err != nil {
		if ctx.Err() != nil {
			t.sent.Add(-1) // cut short by the run deadline, not a sample
			return
		}
		t.transport.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		t.ok.Add(1)
	case http.StatusTooManyRequests:
		t.rejected.Add(1)
	default:
		t.other.Add(1)
	}
	t.mu.Lock()
	t.lats = append(t.lats, elapsed)
	t.mu.Unlock()
}

// report prints the tenant's one-line tally. The field=value format is
// load-bearing: the CI tenant-smoke job greps "tenant compliant:" and
// asserts rejected_429=0, so keep the fields stable.
func (t *tenantLoad) report(out io.Writer) {
	t.mu.Lock()
	lats := append([]time.Duration(nil), t.lats...)
	t.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var p50, p99 time.Duration
	if n := len(lats); n > 0 {
		p50 = lats[n/2]
		p99 = lats[n*99/100]
	}
	fmt.Fprintf(out, "tenant %s: requests=%d ok=%d rejected_429=%d other=%d transport=%d p50=%v p99=%v\n",
		t.name, t.sent.Load(), t.ok.Load(), t.rejected.Load(), t.other.Load(),
		t.transport.Load(), p50.Round(time.Microsecond), p99.Round(time.Microsecond))
}

// traceSample is one traced request's outcome: its ID, latency, the
// server's stage breakdown header, and whether the server echoed the
// trace ID back (end-to-end propagation proof).
type traceSample struct {
	trace   string
	latency time.Duration
	stages  string
	echoed  bool
}

// traceSampler accumulates traced requests across workers.
type traceSampler struct {
	mu      sync.Mutex
	samples []traceSample
}

func (s *traceSampler) record(ts traceSample) {
	s.mu.Lock()
	s.samples = append(s.samples, ts)
	s.mu.Unlock()
}

// report prints the round-trip tally and the n slowest traces with
// their stage breakdowns.
func (s *traceSampler) report(out io.Writer, n int) {
	s.mu.Lock()
	samples := s.samples
	s.mu.Unlock()
	if len(samples) == 0 {
		return
	}
	echoed := 0
	for _, ts := range samples {
		if ts.echoed {
			echoed++
		}
	}
	fmt.Fprintf(out, "traces: %d/%d echoed by the server\n", echoed, len(samples))
	sort.Slice(samples, func(i, j int) bool { return samples[i].latency > samples[j].latency })
	if n > len(samples) {
		n = len(samples)
	}
	fmt.Fprintf(out, "slowest %d traces (stage times in ns):\n", n)
	for _, ts := range samples[:n] {
		stages := ts.stages
		if stages == "" {
			stages = "(no stage breakdown)"
		}
		fmt.Fprintf(out, "  %10v  trace=%s  %s\n", ts.latency.Round(time.Microsecond), ts.trace, stages)
	}
}

// report prints the run summary: throughput, status classes and the
// latency distribution from the telemetry registry.
func report(out io.Writer, reg *telemetry.Registry, statuses map[int]int64,
	sent, transportErrs int64, elapsed time.Duration, conc int, qps float64) {

	snap := reg.Snapshot()
	lat := snap.Timers["load.latency"]
	hist := snap.Histograms["load.latency_seconds"]

	fmt.Fprintf(out, "ratload: %d requests in %v (%.1f req/s, %d workers",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), conc)
	if qps > 0 {
		fmt.Fprintf(out, ", paced to %.0f qps", qps)
	}
	fmt.Fprintln(out, ")")

	codes := make([]int, 0, len(statuses))
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(out, "  HTTP %d: %d\n", code, statuses[code])
	}
	if transportErrs > 0 {
		fmt.Fprintf(out, "  transport errors: %d\n", transportErrs)
	}

	if lat.Count > 0 {
		fmt.Fprintf(out, "latency: mean %v  min %v  max %v  (%d samples)\n",
			lat.Mean.Round(time.Microsecond), lat.Min.Round(time.Microsecond),
			lat.Max.Round(time.Microsecond), lat.Count)
	}
	if hist.Count > 0 {
		fmt.Fprintln(out, "latency histogram (upper bound: count):")
		cum := int64(0)
		for _, b := range hist.Buckets {
			if b.Count == 0 {
				continue
			}
			cum += b.Count
			fmt.Fprintf(out, "  <= %8.4fs: %6d (%5.1f%%)\n",
				b.UpperBound, b.Count, 100*float64(cum)/float64(hist.Count))
		}
		if hist.Overflow > 0 {
			cum += hist.Overflow
			fmt.Fprintf(out, "  <=     +Inf: %6d (%5.1f%%)\n",
				hist.Overflow, 100*float64(cum)/float64(hist.Count))
		}
	}
}
