package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/worksheet"
)

// runDistributed exercises POST /v1/explore/distributed on the -url
// coordinator: -rounds identical requests sharding a fixed grid
// across the -distributed worker fleet, with every response's
// deterministic portion (counts and candidates — everything except
// run telemetry) byte-compared against the first. Distributed explore promises
// determinism — same grid, same answer, regardless of shard
// interleaving, worker count or mid-run hiccups — and repeated
// identical requests under a live fleet are the cheapest way to
// catch a scheduler-order leak in the merged output.
//
// The printed "distributed parity:" line is stable: the CI
// cluster-smoke job greps it.
func runDistributed(out io.Writer, baseURL, workersCSV string, rounds int,
	params core.Parameters, timeout time.Duration, apiKey string) error {

	var urls []string
	for _, part := range strings.Split(workersCSV, ",") {
		if u := strings.TrimSpace(part); u != "" {
			urls = append(urls, u)
		}
	}

	req := api.DistributedExploreRequest{
		Explore: api.ExploreRequest{
			Worksheet:       worksheet.DocFromParams(params),
			ClocksMHz:       []float64{75, 100, 150},
			ThroughputProcs: []float64{10, 20, 40},
			Alphas:          []float64{0.16, 0.37},
			Devices:         []int{1, 2},
			TopK:            10,
			Frontier:        true,
		},
		Workers: urls,
		// Small shards so every round exercises real scheduling: more
		// shards than workers means queueing, stealing and arbitrary
		// completion interleavings.
		ShardSize: 8,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}

	target := strings.TrimSuffix(baseURL, "/") + "/v1/explore/distributed"
	client := &http.Client{Timeout: timeout}

	var first []byte
	var last api.DistributedExploreResponse
	identical := 0
	for i := 0; i < rounds; i++ {
		resp, err := postOnce(client, target, apiKey, body, false)
		if err != nil {
			return fmt.Errorf("distributed round %d: %w", i+1, err)
		}
		canon, dec, err := canonicalDistributed(resp)
		if err != nil {
			return fmt.Errorf("distributed round %d: %w", i+1, err)
		}
		last = dec
		if i == 0 {
			first = canon
			identical = 1
			continue
		}
		if bytes.Equal(canon, first) {
			identical++
		} else {
			fmt.Fprintf(out, "distributed round %d: response differs from round 1\n", i+1)
		}
	}
	fmt.Fprintf(out, "distributed parity: %d/%d identical responses\n", identical, rounds)
	fmt.Fprintf(out, "distributed: %d candidates (%d feasible), %d workers, %d shards, %d dispatched, %d re-dispatched, %d duplicate completions, %d worker failures\n",
		last.Evaluated, last.Feasible, last.Cluster.Workers, last.Cluster.Shards,
		last.Cluster.Dispatched, last.Cluster.Redispatched, last.Cluster.Duplicates,
		last.Cluster.Failures)
	for _, w := range last.Cluster.PerWorker {
		fmt.Fprintf(out, "  worker %s: shards=%d failures=%d\n", w.Worker, w.Shards, w.Failures)
	}
	if identical != rounds {
		return fmt.Errorf("distributed parity: only %d/%d responses identical — merge is order-dependent", identical, rounds)
	}
	return nil
}

// canonicalDistributed reduces a distributed response body to the
// bytes the determinism contract covers — counts and candidates.
// Run-shaped telemetry (elapsed, throughput, per-worker shard tallies)
// legitimately varies between runs and is stripped before comparison.
func canonicalDistributed(body []byte) ([]byte, api.DistributedExploreResponse, error) {
	var resp api.DistributedExploreResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, resp, fmt.Errorf("decoding response: %w", err)
	}
	canon, err := json.Marshal(struct {
		Evaluated uint64          `json:"evaluated"`
		Feasible  uint64          `json:"feasible"`
		Top       []api.Candidate `json:"top"`
		Frontier  []api.Candidate `json:"frontier"`
	}{resp.Evaluated, resp.Feasible, resp.Top, resp.Frontier})
	return canon, resp, err
}
