// Command benchcheck turns `go test -bench` output into a committed
// JSON baseline and gates regressions against it.
//
// Usage:
//
//	go test -bench . -benchmem | benchcheck -emit baseline.json
//	go test -bench . -benchmem | benchcheck -compare baseline.json
//
// Emit mode parses benchmark lines from stdin (or -in file) and writes
// the baseline. Compare mode parses the same format and fails (exit 1)
// when a gated benchmark's ns/op or bytes/op regresses more than
// -tolerance (default 20%) over the baseline — bytes/op gets an extra
// 64-byte absolute slack so near-zero baselines aren't gated on
// rounding — or when ANY benchmark present in both runs allocates more
// per op than it used to; allocation counts are deterministic, so any
// increase is a real regression, not noise. Benchmarks missing from
// either side are reported but not fatal (machines differ; the
// benchmark set grows).
//
// The gated-benchmark list defaults to BenchmarkPredict, the kernel
// the exploration engine multiplies by millions; -gate adds more,
// comma-separated.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's baseline numbers.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_*.json schema.
type Baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	emit := fs.String("emit", "", "write a baseline JSON file from benchmark output")
	compare := fs.String("compare", "", "compare benchmark output against a baseline JSON file")
	in := fs.String("in", "", "read benchmark output from a file instead of stdin")
	tolerance := fs.Float64("tolerance", 0.20, "allowed fractional ns/op and bytes/op regression for gated benchmarks")
	gate := fs.String("gate", "BenchmarkPredict", "comma-separated benchmarks whose ns/op and bytes/op are gated")
	note := fs.String("note", "", "free-form note stored in an emitted baseline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*emit == "") == (*compare == "") {
		fmt.Fprintln(errOut, "benchcheck: exactly one of -emit or -compare is required")
		fs.Usage()
		return 2
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(errOut, "benchcheck: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	got, err := parseBench(src)
	if err != nil {
		fmt.Fprintf(errOut, "benchcheck: %v\n", err)
		return 1
	}
	if *emit != "" {
		if err := writeBaseline(*emit, Baseline{Note: *note, Benchmarks: got}); err != nil {
			fmt.Fprintf(errOut, "benchcheck: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "benchcheck: wrote %d benchmarks to %s\n", len(got), *emit)
		return 0
	}
	base, err := readBaseline(*compare)
	if err != nil {
		fmt.Fprintf(errOut, "benchcheck: %v\n", err)
		return 1
	}
	failures := check(base.Benchmarks, got, splitGates(*gate), *tolerance, out)
	if failures > 0 {
		fmt.Fprintf(errOut, "benchcheck: %d regression(s) against %s\n", failures, *compare)
		return 1
	}
	fmt.Fprintf(out, "benchcheck: OK against %s (%d benchmarks compared)\n", *compare, len(got))
	return 0
}

func splitGates(s string) map[string]bool {
	gates := map[string]bool{}
	for _, g := range strings.Split(s, ",") {
		if g = strings.TrimSpace(g); g != "" {
			gates[g] = true
		}
	}
	return gates
}

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. Lines look like:
//
//	BenchmarkPredict-4   22530512   53.25 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines compare across
// machines with different core counts.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := map[string]Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e Entry
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
				seen = true
			case "B/op":
				e.BytesPerOp = int64(v)
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			}
		}
		if seen {
			out[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("no benchmark lines found in input")
	}
	return out, nil
}

// check reports regressions of got against base, printing one line per
// comparison, and returns the failure count.
func check(base, got map[string]Entry, gates map[string]bool, tol float64, out io.Writer) int {
	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	failures := 0
	for _, n := range names {
		g := got[n]
		b, ok := base[n]
		if !ok {
			fmt.Fprintf(out, "  new      %-36s %12.1f ns/op %6d allocs/op (no baseline)\n", n, g.NsPerOp, g.AllocsPerOp)
			continue
		}
		status := "ok"
		if g.AllocsPerOp > b.AllocsPerOp {
			status = "FAIL"
			failures++
			fmt.Fprintf(out, "  %-8s %-36s allocs/op %d -> %d (any increase fails)\n", status, n, b.AllocsPerOp, g.AllocsPerOp)
			continue
		}
		if gates[n] && b.NsPerOp > 0 {
			ratio := g.NsPerOp / b.NsPerOp
			// bytes/op tolerates the same fraction plus 64 bytes of
			// absolute slack: a 0 B baseline must not fail on a stray
			// rounding byte, only on a real buffer regression.
			byteBudget := b.BytesPerOp + int64(float64(b.BytesPerOp)*tol) + 64
			bytesFail := g.BytesPerOp > byteBudget
			if ratio > 1+tol || bytesFail {
				status = "FAIL"
				failures++
			}
			fmt.Fprintf(out, "  %-8s %-36s %12.1f ns/op vs %.1f baseline (%+.0f%%, gate %.0f%%)\n",
				status, n, g.NsPerOp, b.NsPerOp, (ratio-1)*100, tol*100)
			if bytesFail {
				fmt.Fprintf(out, "  FAIL     %-36s bytes/op %d -> %d (budget %d)\n",
					n, b.BytesPerOp, g.BytesPerOp, byteBudget)
			}
			continue
		}
		fmt.Fprintf(out, "  %-8s %-36s %12.1f ns/op %6d allocs/op\n", status, n, g.NsPerOp, g.AllocsPerOp)
	}
	for n := range base {
		if _, ok := got[n]; !ok {
			fmt.Fprintf(out, "  missing  %-36s (in baseline, not in this run)\n", n)
		}
	}
	return failures
}

func writeBaseline(path string, b Baseline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readBaseline(path string) (Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return Baseline{}, err
	}
	defer f.Close()
	var b Baseline
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("baseline %s holds no benchmarks", path)
	}
	return b, nil
}
