package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/chrec/rat
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPredict-4           	22530512	        53.25 ns/op	       0 B/op	       0 allocs/op
BenchmarkPredictBatch-4      	   14836	     80312 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimulatePDF1D-4     	    1090	   1100841 ns/op	  297554 B/op	    4826 allocs/op
PASS
ok  	github.com/chrec/rat	5.123s
`

func runCheck(t *testing.T, input string, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, strings.NewReader(input), &out, &errOut)
	return code, out.String(), errOut.String()
}

func emitSample(t *testing.T, input string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	code, _, errOut := runCheck(t, input, "-emit", path)
	if code != 0 {
		t.Fatalf("emit failed (%d): %s", code, errOut)
	}
	return path
}

func TestEmitAndCompareClean(t *testing.T) {
	path := emitSample(t, sampleBench)
	code, out, errOut := runCheck(t, sampleBench, "-compare", path)
	if code != 0 {
		t.Fatalf("self-compare failed (%d): %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "OK against") || !strings.Contains(out, "gate 20%") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCompareFailsOnNsRegression(t *testing.T) {
	path := emitSample(t, sampleBench)
	// +30% on the gated BenchmarkPredict: must fail at the 20% gate.
	slow := strings.Replace(sampleBench, "53.25 ns/op", "69.23 ns/op", 1)
	code, out, _ := runCheck(t, slow, "-compare", path)
	if code != 1 || !strings.Contains(out, "FAIL") {
		t.Errorf("exit %d, want 1 with FAIL line:\n%s", code, out)
	}
	// The same slowdown passes with a looser gate.
	if code, _, _ := runCheck(t, slow, "-compare", path, "-tolerance", "0.5"); code != 0 {
		t.Error("50% tolerance still failed a 30% regression")
	}
	// An ungated benchmark may slow down freely.
	slowSim := strings.Replace(sampleBench, "1100841 ns/op", "9900841 ns/op", 1)
	if code, out, _ := runCheck(t, slowSim, "-compare", path); code != 0 {
		t.Errorf("ungated slowdown failed:\n%s", out)
	}
}

func TestCompareFailsOnBytesRegression(t *testing.T) {
	// Give the gated BenchmarkPredict a nonzero byte baseline so the
	// fractional part of the budget matters too.
	base := strings.Replace(sampleBench,
		"53.25 ns/op	       0 B/op",
		"53.25 ns/op	    1000 B/op", 1)
	path := emitSample(t, base)

	// +50 bytes sits inside the 20% + 64 B budget: no failure.
	small := strings.Replace(sampleBench,
		"53.25 ns/op	       0 B/op",
		"53.25 ns/op	    1050 B/op", 1)
	if code, out, _ := runCheck(t, small, "-compare", path); code != 0 {
		t.Errorf("within-budget bytes growth failed:\n%s", out)
	}

	// +400 bytes blows the 1000*0.2+64 budget on the gated benchmark.
	big := strings.Replace(sampleBench,
		"53.25 ns/op	       0 B/op",
		"53.25 ns/op	    1400 B/op", 1)
	code, out, _ := runCheck(t, big, "-compare", path)
	if code != 1 || !strings.Contains(out, "bytes/op 1000 -> 1400") {
		t.Errorf("exit %d, want 1 with bytes/op FAIL line:\n%s", code, out)
	}

	// Ungated benchmarks may grow their bytes freely (allocs still gate).
	fat := strings.Replace(sampleBench, "297554 B/op", "997554 B/op", 1)
	path = emitSample(t, sampleBench)
	if code, out, _ := runCheck(t, fat, "-compare", path); code != 0 {
		t.Errorf("ungated bytes growth failed:\n%s", out)
	}
}

func TestCompareFailsOnAllocIncrease(t *testing.T) {
	path := emitSample(t, sampleBench)
	// One extra alloc in the ungated simulator benchmark: still fatal.
	leaky := strings.Replace(sampleBench, "4826 allocs/op", "4827 allocs/op", 1)
	code, out, _ := runCheck(t, leaky, "-compare", path)
	if code != 1 || !strings.Contains(out, "allocs/op 4826 -> 4827") {
		t.Errorf("exit %d:\n%s", code, out)
	}
	// The zero-alloc batch kernel gaining any allocation is fatal too.
	batchLeak := strings.Replace(sampleBench,
		"80312 ns/op	       0 B/op	       0 allocs/op",
		"80312 ns/op	      64 B/op	       1 allocs/op", 1)
	if code, _, _ := runCheck(t, batchLeak, "-compare", path); code != 1 {
		t.Error("allocs/op 0 -> 1 passed")
	}
}

func TestCompareToleratesNewAndMissing(t *testing.T) {
	path := emitSample(t, sampleBench)
	extra := sampleBench + "BenchmarkNewThing-4 100 5 ns/op 0 B/op 0 allocs/op\n"
	code, out, _ := runCheck(t, extra, "-compare", path)
	if code != 0 || !strings.Contains(out, "new") {
		t.Errorf("new benchmark not tolerated (%d):\n%s", code, out)
	}
	fewer := strings.Replace(sampleBench, "BenchmarkSimulatePDF1D", "XBenchmarkSimulatePDF1D", 1)
	code, out, _ = runCheck(t, fewer, "-compare", path)
	if code != 0 || !strings.Contains(out, "missing") {
		t.Errorf("missing benchmark not tolerated (%d):\n%s", code, out)
	}
}

func TestUsageAndBadInput(t *testing.T) {
	if code, _, _ := runCheck(t, sampleBench); code != 2 {
		t.Error("no mode: want exit 2")
	}
	if code, _, _ := runCheck(t, sampleBench, "-emit", "a", "-compare", "b"); code != 2 {
		t.Error("both modes: want exit 2")
	}
	if code, _, errOut := runCheck(t, "no benchmarks here\n", "-emit", filepath.Join(t.TempDir(), "x.json")); code != 1 ||
		!strings.Contains(errOut, "no benchmark lines") {
		t.Errorf("empty input: exit %d, %s", code, errOut)
	}
	if code, _, _ := runCheck(t, sampleBench, "-compare", "/nonexistent.json"); code != 1 {
		t.Error("missing baseline: want exit 1")
	}
}
