package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/cli"
)

// cmdStatus probes every fleet member's /v1/status and prints one
// line per worker. It exits non-zero if any worker is unreachable, so
// scripts can gate a distributed run on fleet health.
func cmdStatus(args []string, out io.Writer) error {
	fs := newFlagSet("status")
	workersFlag := fs.String("workers", "", "comma-separated ratd base URLs (required)")
	key := fs.String("key", "", "API key sent to every worker (Authorization: Bearer)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-worker probe deadline")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	urls, err := workerURLs(*workersFlag)
	if err != nil {
		return err
	}

	down := 0
	for _, u := range urls {
		opts := []client.Option{}
		if *key != "" {
			opts = append(opts, client.WithAPIKey(*key))
		}
		c := client.New(u, opts...)
		//rat:allow-wallclock CLI probe deadline
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		st, err := c.Status(ctx)
		cancel()
		if err != nil {
			down++
			fmt.Fprintf(out, "%s: DOWN (%v)\n", u, err)
			continue
		}
		fmt.Fprintf(out, "%s: up %s, %d requests, brownout %d, draining %v\n",
			u, (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second),
			st.Requests, st.BrownoutLevel, st.Draining)
	}
	if down > 0 {
		return fmt.Errorf("%d of %d workers down", down, len(urls))
	}
	return nil
}
