package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/chrec/rat/client"
	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/cluster"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/telemetry"
	"github.com/chrec/rat/internal/worksheet"
)

// cmdExplore shards a design-space exploration across a ratd fleet
// and prints the merged result. The output is byte-identical with a
// single-node `ratsim explore` over the same grid: candidates go to
// out, while fleet bookkeeping (the summary line in -jsonl mode, the
// shard statistics) goes to errOut so pipelines can diff out alone.
func cmdExplore(args []string, out, errOut io.Writer) error {
	fs := newFlagSet("explore")
	workersFlag := fs.String("workers", "", "comma-separated ratd base URLs (required)")
	via := fs.String("via", "", "delegate coordination to this ratd via POST /v1/explore/distributed")
	study := fs.String("case", "pdf1d", "base worksheet: pdf1d, pdf2d or md")
	wsFile := fs.String("worksheet", "", "JSON worksheet file as the base (overrides -case)")
	clocks := fs.String("clocks", "", "clock axis in MHz, e.g. 75,100,150")
	tps := fs.String("tp", "", "throughput_proc axis (ops/cycle), e.g. 10,20,40")
	alphas := fs.String("alphas", "", "interconnect-efficiency axis in (0,1], e.g. 0.16,0.37")
	blocks := fs.String("blocks", "", "block-size axis (elements per iteration), e.g. 512,2048")
	devices := fs.String("devices", "", "device-count axis, e.g. 1,2,4")
	topo := fs.String("topology", "shared", "multi-FPGA topology: shared or independent")
	buf := fs.String("buffering", "both", "buffering axis: single, double or both")
	objective := fs.String("objective", "max-speedup", "ranking: max-speedup, min-trc or min-cost")
	minSpeedup := fs.Float64("min-speedup", 0, "feasibility: minimum predicted speedup")
	maxTRC := fs.Float64("max-trc", 0, "feasibility: maximum t_RC in seconds")
	maxUtilComm := fs.Float64("max-util-comm", 0, "feasibility: maximum communication utilization")
	maxDevices := fs.Int("max-devices", 0, "feasibility: maximum device count")
	top := fs.Int("top", 10, "how many best candidates to report")
	jsonl := fs.Bool("jsonl", false, "emit candidates as JSONL instead of a table")
	frontier := fs.Bool("frontier", false, "also report the Pareto frontier")
	shardSize := fs.Uint64("shard-size", 0, "candidates per shard (0 = auto)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent shards per worker (0 = default)")
	shardTimeout := fs.Duration("shard-timeout", 30*time.Second, "per-shard deadline before re-dispatch")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall run deadline")
	key := fs.String("key", "", "API key sent to every worker (Authorization: Bearer)")
	metrics := fs.Bool("metrics", false, "print the coordinator's telemetry after the run")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	urls, err := workerURLs(*workersFlag)
	if err != nil {
		return err
	}

	req, err := buildRequest(exploreGridFlags{
		study: *study, wsFile: *wsFile, clocks: *clocks, tps: *tps,
		alphas: *alphas, blocks: *blocks, devices: *devices, topo: *topo,
		buf: *buf, objective: *objective, minSpeedup: *minSpeedup,
		maxTRC: *maxTRC, maxUtilComm: *maxUtilComm, maxDevices: *maxDevices,
		top: *top, frontier: *frontier,
	})
	if err != nil {
		return err
	}

	//rat:allow-wallclock CLI deadline for the whole fleet run
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var (
		res    explore.Result
		cstats api.ClusterStats
		reg    *telemetry.Registry
		runErr error
	)
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	if *via != "" {
		res, cstats, runErr = runVia(ctx, *via, urls, req, *shardSize, *maxInflight, *shardTimeout, *key)
	} else {
		res, cstats, runErr = runFleet(ctx, urls, req, *shardSize, *maxInflight, *shardTimeout, *key, reg)
	}
	if runErr != nil {
		return runErr
	}

	if *jsonl {
		if err := explore.WriteJSONL(out, "top", res.Top); err != nil {
			return err
		}
		if *frontier {
			if err := explore.WriteJSONL(out, "frontier", res.Frontier); err != nil {
				return err
			}
		}
		fmt.Fprintf(errOut, "ratctl: explored %d candidates (%d feasible) across %d workers in %v\n",
			res.Evaluated, res.Feasible, cstats.Workers, res.Elapsed.Round(time.Millisecond))
	} else {
		fmt.Fprintf(out, "explored %d candidates (%d feasible) across %d workers in %v (%.3g candidates/s)\n\n",
			res.Evaluated, res.Feasible, cstats.Workers, res.Elapsed.Round(time.Microsecond), res.CandidatesPerSec)
		title := fmt.Sprintf("top %d by %s", len(res.Top), req.Objective)
		if err := renderCandidates(out, title, res.Top); err != nil {
			return err
		}
		if *frontier {
			fmt.Fprintln(out)
			if err := renderCandidates(out, fmt.Sprintf("Pareto frontier (%d candidates)", len(res.Frontier)), res.Frontier); err != nil {
				return err
			}
		}
		fmt.Fprintln(out)
		renderCluster(out, cstats)
	}
	if reg != nil {
		fmt.Fprintln(out, "\nmetrics:")
		return telemetry.WriteText(out, reg.Snapshot())
	}
	return nil
}

// runFleet coordinates the exploration locally: one typed client per
// worker URL, internal/cluster scheduling shards across them.
func runFleet(ctx context.Context, urls []string, req api.ExploreRequest,
	shardSize uint64, maxInflight int, shardTimeout time.Duration,
	key string, reg *telemetry.Registry) (explore.Result, api.ClusterStats, error) {

	remotes := make([]cluster.Remote, 0, len(urls))
	for _, u := range urls {
		remotes = append(remotes, cluster.Remote{Name: u, W: newWorkerClient(u, key, shardTimeout)})
	}
	coord, err := cluster.New(cluster.Config{
		Workers:      remotes,
		ShardSize:    shardSize,
		MaxInflight:  maxInflight,
		ShardTimeout: shardTimeout,
		Metrics:      reg,
	})
	if err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}
	res, stats, err := coord.Run(ctx, req)
	if err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}
	return res, stats.API(), nil
}

// runVia delegates coordination to a ratd's /v1/explore/distributed
// endpoint, then re-derives the exact candidates locally from the
// returned indices: the wire form rounds ClockHz through MHz, so
// printing wire floats could diverge from a local run in the last
// bit. Re-evaluating the same indices against the same grid cannot.
func runVia(ctx context.Context, via string, urls []string, req api.ExploreRequest,
	shardSize uint64, maxInflight int, shardTimeout time.Duration,
	key string) (explore.Result, api.ClusterStats, error) {

	// The coordinator call spans the whole fleet run, so unlike the
	// per-worker clients it gets no transport timeout of its own: the
	// ctx deadline (-timeout) bounds it.
	copts := []client.Option{
		client.WithRetryPolicy(client.RetryPolicy{MaxRetries: 1, Backoff: 50 * time.Millisecond}),
	}
	if key != "" {
		copts = append(copts, client.WithAPIKey(key))
	}
	c := client.New(via, copts...)
	resp, err := c.ExploreDistributed(ctx, api.DistributedExploreRequest{
		Explore:             req,
		Workers:             urls,
		ShardSize:           shardSize,
		MaxInflight:         maxInflight,
		ShardTimeoutSeconds: shardTimeout.Seconds(),
	})
	if err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}

	g, err := req.Grid()
	if err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}
	opts, err := req.Options(0)
	if err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}
	res := explore.Result{
		Evaluated:        resp.Evaluated,
		Feasible:         resp.Feasible,
		Workers:          resp.Workers,
		Elapsed:          time.Duration(resp.ElapsedSeconds * float64(time.Second)),
		CandidatesPerSec: resp.CandidatesPerSec,
	}
	if res.Top, err = candidatesAt(g, opts.Constraints, resp.Top); err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}
	if res.Frontier, err = candidatesAt(g, opts.Constraints, resp.Frontier); err != nil {
		return explore.Result{}, api.ClusterStats{}, err
	}
	return res, resp.Cluster, nil
}

// candidatesAt re-evaluates the wire candidates' indices on the local
// grid, preserving the response ordering.
func candidatesAt(g explore.Grid, cons explore.Constraints, wire []api.Candidate) ([]explore.Candidate, error) {
	if len(wire) == 0 {
		return nil, nil
	}
	indices := make([]uint64, len(wire))
	for i, c := range wire {
		indices[i] = c.Index
	}
	evaled, err := explore.EvalIndices(g, cons, indices)
	if err != nil {
		return nil, err
	}
	byIndex := make(map[uint64]explore.Candidate, len(evaled))
	for _, c := range evaled {
		byIndex[c.Index] = c
	}
	out := make([]explore.Candidate, 0, len(wire))
	for _, w := range wire {
		c, ok := byIndex[w.Index]
		if !ok {
			return nil, fmt.Errorf("candidate %d from the coordinator fails the constraints locally (grid mismatch?)", w.Index)
		}
		out = append(out, c)
	}
	return out, nil
}

// newWorkerClient builds the typed client used for one fleet member.
// Retries stay light (the coordinator already re-dispatches failed
// shards) and the HTTP timeout leaves headroom over the shard
// deadline so the coordinator, not the transport, decides stragglers.
func newWorkerClient(u, key string, shardTimeout time.Duration) *client.Client {
	opts := []client.Option{
		client.WithRetryPolicy(client.RetryPolicy{MaxRetries: 1, Backoff: 50 * time.Millisecond}),
		client.WithHTTPClient(&http.Client{Timeout: shardTimeout + 30*time.Second}),
	}
	if key != "" {
		opts = append(opts, client.WithAPIKey(key))
	}
	return client.New(u, opts...)
}

// workerURLs splits and validates the -workers flag.
func workerURLs(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("%w: -workers is required", cli.ErrUsage)
	}
	var urls []string
	for _, part := range strings.Split(s, ",") {
		u := strings.TrimSpace(part)
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("%w: worker %q is not an http(s) URL", cli.ErrUsage, u)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("%w: -workers is required", cli.ErrUsage)
	}
	return urls, nil
}

// exploreGridFlags carries the parsed grid flags to buildRequest.
type exploreGridFlags struct {
	study, wsFile, clocks, tps, alphas, blocks, devices string
	topo, buf, objective                                string
	minSpeedup, maxTRC, maxUtilComm                     float64
	maxDevices, top                                     int
	frontier                                            bool
}

// buildRequest translates the grid flags into the wire request. The
// same request drives both coordination modes, and its Grid() is the
// one workers compile — so every float conversion (MHz to Hz, most
// visibly) happens exactly once, on the worker, identically to a
// local ratsim run.
func buildRequest(f exploreGridFlags) (api.ExploreRequest, error) {
	base, err := exploreBase(f.study, f.wsFile)
	if err != nil {
		return api.ExploreRequest{}, err
	}
	req := api.ExploreRequest{
		Worksheet:   worksheet.DocFromParams(base),
		Topology:    f.topo,
		Objective:   f.objective,
		TopK:        f.top,
		MinSpeedup:  f.minSpeedup,
		MaxUtilComm: f.maxUtilComm,
		MaxDevices:  f.maxDevices,
		Frontier:    f.frontier,
	}
	req.MaxTRCSeconds = f.maxTRC
	if req.ClocksMHz, err = parseFloats(f.clocks, "-clocks"); err != nil {
		return api.ExploreRequest{}, err
	}
	if req.ThroughputProcs, err = parseFloats(f.tps, "-tp"); err != nil {
		return api.ExploreRequest{}, err
	}
	if req.Alphas, err = parseFloats(f.alphas, "-alphas"); err != nil {
		return api.ExploreRequest{}, err
	}
	if req.BlockSizes, err = parseInt64s(f.blocks, "-blocks"); err != nil {
		return api.ExploreRequest{}, err
	}
	devs, err := parseInt64s(f.devices, "-devices")
	if err != nil {
		return api.ExploreRequest{}, err
	}
	for _, d := range devs {
		req.Devices = append(req.Devices, int(d))
	}
	switch f.buf {
	case "both":
	case "single", "double":
		req.Bufferings = []string{f.buf}
	default:
		return api.ExploreRequest{}, fmt.Errorf("%w: unknown buffering %q (want single, double or both)", cli.ErrUsage, f.buf)
	}
	// Fail fast on grid/objective mistakes before touching the fleet.
	g, err := req.Grid()
	if err != nil {
		return api.ExploreRequest{}, fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	if err := g.Validate(); err != nil {
		return api.ExploreRequest{}, fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	if _, err := req.Options(0); err != nil {
		return api.ExploreRequest{}, fmt.Errorf("%w: %w", cli.ErrUsage, err)
	}
	return req, nil
}

// exploreBase resolves the grid's base worksheet from the flags.
func exploreBase(study, wsFile string) (core.Parameters, error) {
	if wsFile != "" {
		f, err := os.Open(wsFile)
		if err != nil {
			return core.Parameters{}, err
		}
		defer f.Close()
		p, err := worksheet.DecodeJSON(f)
		if err != nil {
			return core.Parameters{}, fmt.Errorf("worksheet %s: %w", wsFile, err)
		}
		return p, nil
	}
	switch study {
	case "pdf1d":
		return paper.PDF1DParams(), nil
	case "pdf2d":
		return paper.PDF2DParams(), nil
	case "md":
		return paper.MDParams(), nil
	}
	return core.Parameters{}, fmt.Errorf("%w: unknown case study %q", cli.ErrUsage, study)
}

// parseFloats parses a comma-separated float list; empty means an
// unset axis.
func parseFloats(s, flagName string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad %s entry %q", cli.ErrUsage, flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInt64s parses a comma-separated integer list; empty means an
// unset axis.
func parseInt64s(s, flagName string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad %s entry %q", cli.ErrUsage, flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// renderCandidates prints candidates as a report table, mirroring
// ratsim's layout.
func renderCandidates(out io.Writer, title string, cands []explore.Candidate) error {
	tbl := report.Table{
		Title: title,
		Headers: []string{"#", "MHz", "tp", "alpha w/r", "block", "iters",
			"dev", "buffering", "t_RC", "speedup", "util c/c"},
	}
	for _, c := range cands {
		tbl.AddRow(
			fmt.Sprintf("%d", c.Index),
			fmt.Sprintf("%g", c.ClockHz/1e6),
			fmt.Sprintf("%g", c.ThroughputProc),
			fmt.Sprintf("%.2f/%.2f", c.AlphaWrite, c.AlphaRead),
			fmt.Sprintf("%d", c.ElementsIn),
			fmt.Sprintf("%d", c.Iterations),
			fmt.Sprintf("%d", c.Devices),
			c.Buffering.String(),
			report.FormatSci(c.TRC),
			fmt.Sprintf("%.2f", c.Speedup),
			fmt.Sprintf("%s/%s", report.FormatPercent(c.UtilComm), report.FormatPercent(c.UtilComp)),
		)
	}
	return tbl.Render(out)
}

// renderCluster prints the shard-scheduling statistics.
func renderCluster(out io.Writer, cs api.ClusterStats) {
	fmt.Fprintf(out, "fleet: %d workers, %d shards (%d dispatched, %d retried, %d re-dispatched, %d duplicate completions, %d worker failures)\n",
		cs.Workers, cs.Shards, cs.Dispatched, cs.Retried, cs.Redispatched, cs.Duplicates, cs.Failures)
	for _, w := range cs.PerWorker {
		fmt.Fprintf(out, "  %s: %d shards, %d failures\n", w.Worker, w.Shards, w.Failures)
	}
}
