// Command ratctl operates a ratd fleet from the command line. Its
// centerpiece is distributed design-space exploration: it shards an
// explore grid's candidate-index range across N ratd workers via
// internal/cluster and prints the merged result — bit-for-bit what a
// single node (or `ratsim explore`) would produce for the same grid,
// whatever the worker count, shard size or mid-run failures.
//
// Usage:
//
//	ratctl explore -workers http://h1:8080,http://h2:8080 -worksheet w.json \
//	    [-clocks 75,100,150] [-tp 10,20,40] [-top 10] [-frontier] [-jsonl]
//	ratctl explore -workers ... -via http://coordinator:8080   (delegate to /v1/explore/distributed)
//	ratctl status -workers http://h1:8080,http://h2:8080
//
// Exit codes follow the shared contract: 0 success, 1 runtime
// failure, 2 usage error. See docs/DISTRIBUTED.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/chrec/rat/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, out, errOut io.Writer) int {
	if len(args) < 1 {
		usage(errOut)
		return 2
	}
	var err error
	switch args[0] {
	case "explore":
		err = cmdExplore(args[1:], out, errOut)
	case "status":
		err = cmdStatus(args[1:], out)
	case "-h", "-help", "--help", "help":
		usage(out)
	default:
		fmt.Fprintf(errOut, "ratctl: unknown command %q\n", args[0])
		usage(errOut)
		return 2
	}
	if err != nil {
		fmt.Fprintf(errOut, "ratctl: %v\n", err)
		if errors.Is(err, cli.ErrUsage) {
			usage(errOut)
		}
	}
	return cli.Code(err)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  ratctl explore -workers URL[,URL...] [-via URL] [-case pdf1d | -worksheet f.json]
                 [-clocks 75,100,150] [-tp 10,20,40] [-alphas 0.16,0.37] [-blocks 512,2048]
                 [-devices 1,2,4] [-topology shared|independent] [-buffering single|double|both]
                 [-objective max-speedup|min-trc|min-cost] [-min-speedup X] [-max-trc S]
                 [-max-util-comm F] [-max-devices N] [-top 10] [-frontier] [-jsonl]
                 [-shard-size N] [-max-inflight 2] [-shard-timeout 30s] [-timeout 10m]
                 [-key APIKEY] [-metrics]
  ratctl status  -workers URL[,URL...] [-key APIKEY] [-timeout 10s]

explore shards the grid across the worker fleet and merges the results
byte-identically with a single-node run (diff it against
'ratsim explore -jsonl' on the same grid). With -via, the named ratd
coordinates instead via POST /v1/explore/distributed.
`)
}
