package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/server"
)

// startFleet boots n in-process ratd instances and returns their URLs.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	return urls
}

// gridArgs is the fixture grid (144 candidates) as explore flags,
// shared by the tests and mirrored by the Makefile cluster-smoke
// target.
var gridArgs = []string{
	"-clocks", "75,100,150", "-tp", "10,20,40", "-alphas", "0.16,0.37",
	"-blocks", "512,2048", "-devices", "1,4", "-topology", "independent",
	"-top", "10", "-frontier",
}

// singleNodeJSONL renders the reference output: what ratsim explore
// -jsonl prints for the same grid.
func singleNodeJSONL(t *testing.T) string {
	t.Helper()
	req, err := buildRequest(exploreGridFlags{
		study: "pdf1d", clocks: "75,100,150", tps: "10,20,40",
		alphas: "0.16,0.37", blocks: "512,2048", devices: "1,4",
		topo: "independent", buf: "both", objective: "max-speedup",
		top: 10, frontier: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := req.Options(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := explore.Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := explore.WriteJSONL(&buf, "top", res.Top); err != nil {
		t.Fatal(err)
	}
	if err := explore.WriteJSONL(&buf, "frontier", res.Frontier); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestExploreJSONLByteIdentical: ratctl explore -jsonl over 1, 2 and
// 3 workers emits byte-for-byte the single-node JSONL.
func TestExploreJSONLByteIdentical(t *testing.T) {
	want := singleNodeJSONL(t)
	urls := startFleet(t, 3)
	for n := 1; n <= len(urls); n++ {
		args := append([]string{"explore",
			"-workers", strings.Join(urls[:n], ","),
			"-shard-size", "7", "-jsonl"}, gridArgs...)
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("workers=%d: exit %d: %s", n, code, errOut.String())
		}
		if out.String() != want {
			t.Errorf("workers=%d: JSONL diverges from single-node output", n)
		}
		if !strings.Contains(errOut.String(), "explored 144 candidates") {
			t.Errorf("workers=%d: summary line missing from stderr: %q", n, errOut.String())
		}
	}
}

// TestExploreViaCoordinator: -via delegates to the server-side
// coordinator and still prints byte-identical JSONL.
func TestExploreViaCoordinator(t *testing.T) {
	want := singleNodeJSONL(t)
	urls := startFleet(t, 3)
	args := append([]string{"explore",
		"-workers", strings.Join(urls[1:], ","),
		"-via", urls[0],
		"-shard-size", "7", "-jsonl"}, gridArgs...)
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if out.String() != want {
		t.Error("-via JSONL diverges from single-node output")
	}
}

// TestExploreTableMode: the human-readable report carries the fleet
// statistics block.
func TestExploreTableMode(t *testing.T) {
	urls := startFleet(t, 2)
	args := append([]string{"explore", "-workers", strings.Join(urls, ","), "-shard-size", "16"}, gridArgs...)
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"explored 144 candidates", "top 10 by max-speedup", "Pareto frontier", "fleet: 2 workers, 9 shards"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, out.String())
		}
	}
}

// TestStatusCommand: status prints one line per worker and fails when
// any is down.
func TestStatusCommand(t *testing.T) {
	urls := startFleet(t, 2)
	var out, errOut bytes.Buffer
	if code := run([]string{"status", "-workers", strings.Join(urls, ",")}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Count(out.String(), ": up ") != 2 {
		t.Errorf("status output:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	down := urls[0] + "," + "http://127.0.0.1:1"
	if code := run([]string{"status", "-workers", down, "-timeout", "2s"}, &out, &errOut); code != 1 {
		t.Fatalf("status with a down worker: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "DOWN") {
		t.Errorf("status output misses the down worker:\n%s", out.String())
	}
}

// TestUsageContract: usage mistakes exit 2 with the usage text,
// runtime failures exit 1.
func TestUsageContract(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"explore"},                          // missing -workers
		{"explore", "-workers", "not-a-url"}, // bad scheme
		{"explore", "-workers", "http://h", "-buffering", "sometimes"},
		{"explore", "-workers", "http://h", "-nope"},
		{"status"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
	}

	// An unreachable fleet is a runtime failure, not a usage error.
	var out, errOut bytes.Buffer
	args := []string{"explore", "-workers", "http://127.0.0.1:1",
		"-shard-timeout", "200ms", "-timeout", "5s", "-clocks", "75"}
	if code := run(args, &out, &errOut); code != 1 {
		t.Errorf("unreachable fleet: exit %d, want 1 (%s)", code, errOut.String())
	}
}
