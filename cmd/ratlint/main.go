// Command ratlint enforces the repository's project invariants as
// static diagnostics: determinism of the search/replay packages,
// zero-allocation discipline on //rat:hotpath functions, the 0/1/2
// exit-code contract, %w error wrapping, Prometheus-conformant metric
// names, and well-formed //rat: directives. See internal/lint and
// docs/LINT.md.
//
// Usage:
//
//	ratlint [-checks id,id,...] [-json] [-list] [packages...]
//
// Packages default to ./... resolved from the current directory.
// Exit status follows the repository contract: 0 when the tree is
// clean, 1 when findings are reported (or the load fails), 2 on a
// usage error such as an unknown check ID.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/lint"
)

func main() {
	err := run(os.Args[1:], ".", os.Stdout, os.Stderr)
	if code := cli.Code(err); code != 0 {
		fmt.Fprintf(os.Stderr, "ratlint: %v\n", err)
		os.Exit(code)
	}
}

// errFindings tags the "diagnostics were reported" failure so main
// prints a summary but the exit code stays 1, not 2.
type errFindings int

func (e errFindings) Error() string {
	if e == 1 {
		return "1 finding"
	}
	return fmt.Sprintf("%d findings", int(e))
}

func run(args []string, dir string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("ratlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	checks := fs.String("checks", "", "comma-separated check IDs to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	list := fs.Bool("list", false, "list the available checks and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: ratlint [-checks id,id,...] [-json] [-list] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	var enabled map[string]bool
	if *checks != "" {
		enabled = map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if _, ok := lint.ByName(name); !ok {
				return cli.Usagef("unknown check %q (ratlint -list shows the available checks)", name)
			}
			enabled[name] = true
		}
	}

	patterns := fs.Args()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return err
	}
	diags := lint.Run(pkgs, enabled)

	// Report paths relative to the invocation directory, the way
	// compilers do.
	base, err := filepath.Abs(dir)
	if err == nil {
		for i := range diags {
			if rel, rerr := filepath.Rel(base, diags[i].File); rerr == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if n := len(diags); n > 0 {
		return errFindings(n)
	}
	return nil
}
