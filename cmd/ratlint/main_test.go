package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/lint"
)

func runLint(t *testing.T, args ...string) (error, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	err := run(args, "../..", &out, &errOut)
	return err, out.String(), errOut.String()
}

func TestListChecks(t *testing.T) {
	err, out, _ := runLint(t, "-list")
	if err != nil {
		t.Fatalf("-list failed: %v", err)
	}
	for _, want := range []string{"directive", "errwrap", "exitcode", "hotpath", "metricname", "nodeterminism"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output lacks %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if err, _, _ := runLint(t, "-definitely-not-a-flag"); cli.Code(err) != 2 {
		t.Errorf("unknown flag: exit %d, want 2", cli.Code(err))
	}
	err, _, _ := runLint(t, "-checks", "nope")
	if cli.Code(err) != 2 {
		t.Errorf("unknown check: exit %d (%v), want 2", cli.Code(err), err)
	}
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown-check error does not name the check: %v", err)
	}
}

func TestFindingsExitOne(t *testing.T) {
	err, out, _ := runLint(t, "-checks", "exitcode", "./internal/lint/testdata/src/exit")
	if cli.Code(err) != 1 {
		t.Fatalf("fixture full of violations: exit %d (%v), want 1\n%s", cli.Code(err), err, out)
	}
	if !strings.Contains(out, "[exitcode]") || !strings.Contains(out, "os.Exit") {
		t.Errorf("diagnostics lack the check ID or message:\n%s", out)
	}
	// Paths are reported relative to the invocation directory.
	if !strings.Contains(out, "internal/lint/testdata/src/exit/exit.go:") {
		t.Errorf("diagnostics are not invocation-relative:\n%s", out)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	if err, out, _ := runLint(t, "./internal/cli"); err != nil {
		t.Fatalf("internal/cli should be clean: %v\n%s", err, out)
	}
}

func TestJSONOutput(t *testing.T) {
	err, out, _ := runLint(t, "-json", "-checks", "errwrap", "./internal/lint/testdata/src/wrap")
	if cli.Code(err) != 1 {
		t.Fatalf("exit %d (%v), want 1", cli.Code(err), err)
	}
	var diags []lint.Diagnostic
	if jerr := json.Unmarshal([]byte(out), &diags); jerr != nil {
		t.Fatalf("-json output does not parse: %v\n%s", jerr, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array for a fixture full of violations")
	}
	for _, d := range diags {
		if d.Check != "errwrap" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}
