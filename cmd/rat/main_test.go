package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/worksheet"
)

// writeSheet drops the canonical Table 2 worksheet into a temp file.
func writeSheet(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var content string
	if strings.HasSuffix(name, ".json") {
		var buf bytes.Buffer
		if err := worksheet.EncodeJSON(&buf, paper.PDF1DParams()); err != nil {
			t.Fatal(err)
		}
		content = buf.String()
	} else {
		content = worksheet.EncodeString(paper.PDF1DParams())
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes the command and captures output.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestPredictCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	code, out, errOut := runCLI(t, "predict", "-f", sheet, "-clocks", "75,100,150")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"1.31E-4", "10.6", "5.4", "asymptotic speedup limit", "crossover clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPredictJSONWorksheet(t *testing.T) {
	sheet := writeSheet(t, "design.json")
	code, out, errOut := runCLI(t, "predict", "-f", sheet)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "10.6") {
		t.Errorf("JSON worksheet prediction wrong:\n%s", out)
	}
}

// TestPredictWithAlphaTable: alphas re-derived from a measured table
// at the 2-D PDF design's true transfer sizes fix the comm prediction.
func TestPredictWithAlphaTable(t *testing.T) {
	// Save the Nallatech tabulation.
	ic := platform.NallatechH101().Interconnect
	tablePath := filepath.Join(t.TempDir(), "nallatech.alphas")
	var tbl bytes.Buffer
	if err := platform.SaveAlphaTable(&tbl, ic, []int64{512, 2048, 4096, 65536, 262144}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tablePath, tbl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// A 2-D PDF worksheet.
	sheetPath := filepath.Join(t.TempDir(), "pdf2d.rat")
	if err := os.WriteFile(sheetPath, []byte(worksheet.EncodeString(paper.PDF2DParams())), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "predict", "-f", sheetPath, "-alphas", tablePath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// The read alpha drops from the naive 0.16 to the measured
	// 256 KB value ~0.025, pushing t_comm to ~1.05E-2.
	if !strings.Contains(out, "0.025 read") {
		t.Errorf("expected size-matched read alpha:\n%s", out)
	}
	if !strings.Contains(out, "1.05E-2") {
		t.Errorf("expected corrected t_comm 1.05E-2:\n%s", out)
	}
	if code, _, _ := runCLI(t, "predict", "-f", sheetPath, "-alphas", "/no/such/table"); code != 1 {
		t.Error("missing table accepted")
	}
}

func TestSolveCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	code, out, _ := runCLI(t, "solve", "-f", sheet, "-target", "20")
	if code != 0 || !strings.Contains(out, "required throughput_proc: 39.31") {
		t.Errorf("solve output (exit %d):\n%s", code, out)
	}
	code, out, _ = runCLI(t, "solve", "-f", sheet, "-target", "20", "-for", "clock")
	if code != 0 || !strings.Contains(out, "required f_clock") {
		t.Errorf("solve clock (exit %d):\n%s", code, out)
	}
	code, out, _ = runCLI(t, "solve", "-f", sheet, "-target", "2", "-for", "alpha")
	if code != 0 || !strings.Contains(out, "required alpha") {
		t.Errorf("solve alpha (exit %d):\n%s", code, out)
	}
	// Unknown free variable.
	code, _, errOut := runCLI(t, "solve", "-f", sheet, "-target", "2", "-for", "luck")
	if code != 1 || !strings.Contains(errOut, "unknown solve variable") {
		t.Errorf("bad -for: exit %d, %s", code, errOut)
	}
	// Unreachable target surfaces the solver's error.
	code, _, errOut = runCLI(t, "solve", "-f", sheet, "-target", "100000")
	if code != 1 || !strings.Contains(errOut, "unreachable") {
		t.Errorf("unreachable target: exit %d, %s", code, errOut)
	}
}

func TestSweepCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	code, out, _ := runCLI(t, "sweep", "-f", sheet, "-min", "100", "-max", "8000", "-steps", "6")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "compute-bound") || !strings.Contains(out, "comm-bound") ||
		!strings.Contains(out, "regime crossover") {
		t.Errorf("sweep should cross regimes:\n%s", out)
	}
	if code, _, _ := runCLI(t, "sweep", "-f", sheet, "-min", "100", "-max", "50"); code != 1 {
		t.Error("max < min accepted")
	}
}

func TestBoundsCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	code, out, _ := runCLI(t, "bounds", "-f", sheet, "-target", "10")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"speedup:", "t_RC:", "10x goal:"} {
		if !strings.Contains(out, want) {
			t.Errorf("bounds output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runCLI(t, "bounds", "-f", sheet, "-alpha", "2"); code != 1 {
		t.Error("invalid uncertainty accepted")
	}
}

func TestMultiCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	code, out, _ := runCLI(t, "multi", "-f", sheet, "-devices", "8")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Multi-FPGA scaling", "knee", "efficiency", "8"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi output missing %q:\n%s", want, out)
		}
	}
	code, out, _ = runCLI(t, "multi", "-f", sheet, "-devices", "4", "-independent", "-double")
	if code != 0 || !strings.Contains(out, "independent-channels") {
		t.Errorf("independent multi (exit %d):\n%s", code, out)
	}
	if code, _, _ := runCLI(t, "multi", "-f", sheet, "-devices", "0"); code != 1 {
		t.Error("zero devices accepted")
	}
}

func TestCheckCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	code, out, _ := runCLI(t, "check", "-f", sheet, "-target", "10",
		"-device", "Virtex-4 LX100", "-dsp", "8", "-bram", "25", "-logic", "6800")
	if code != 0 || !strings.Contains(out, "verdict: PROCEED") {
		t.Errorf("passing check: exit %d\n%s", code, out)
	}
	// Failing verdict exits 1 but is not an error.
	code, out, errOut := runCLI(t, "check", "-f", sheet, "-target", "50",
		"-device", "Virtex-4 LX100", "-dsp", "8", "-bram", "25", "-logic", "6800")
	if code != 1 || !strings.Contains(out, "verdict: NEW DESIGN") || errOut != "" {
		t.Errorf("failing check: exit %d out=%q err=%q", code, out, errOut)
	}
	if code, _, errOut := runCLI(t, "check", "-f", sheet, "-target", "10", "-device", "NoSuchChip"); code != 1 || !strings.Contains(errOut, "unknown device") {
		t.Errorf("unknown device: exit %d, %s", code, errOut)
	}
}

func TestProjectCommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.json")
	var buf bytes.Buffer
	err := worksheet.EncodeProject(&buf, "pdf suite", []core.Stage{
		{Name: "pdf-1d", Params: paper.PDF1DParams(), Buffering: core.SingleBuffered},
		{Name: "pdf-2d", Params: paper.PDF2DParams(), Buffering: core.DoubleBuffered},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "project", "-f", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"pdf suite", "pdf-1d", "pdf-2d", "bottleneck: pdf-2d", "composite:"} {
		if !strings.Contains(out, want) {
			t.Errorf("project output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runCLI(t, "project"); code != 1 {
		t.Error("missing -f accepted")
	}
	if code, _, _ := runCLI(t, "project", "-f", "/does/not/exist.json"); code != 1 {
		t.Error("missing file accepted")
	}
}

func TestValidateCommand(t *testing.T) {
	sheet := writeSheet(t, "design.rat")
	// The paper's measured 1-D PDF numbers.
	code, out, errOut := runCLI(t, "validate", "-f", sheet, "-comm", "2.5e-5", "-comp", "1.39e-4", "-trc", "7.45e-2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"t_comm", "optimistic", "t_comp", "accurate", "diagnosis:", "double buffering would hide"} {
		if !strings.Contains(out, want) {
			t.Errorf("validate output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "speedup: 10.6 predicted, 7.8 measured") {
		t.Errorf("speedup line wrong:\n%s", out)
	}
	if code, _, _ := runCLI(t, "validate", "-f", sheet); code != 1 {
		t.Error("missing measurements accepted")
	}
}

func TestExampleRoundTrips(t *testing.T) {
	code, out, _ := runCLI(t, "example")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	p, err := worksheet.DecodeString(out)
	if err != nil {
		t.Fatalf("example output does not parse: %v", err)
	}
	if p != paper.PDF1DParams() {
		t.Error("example worksheet is not the Table 2 canonical")
	}
}

func TestDevicesCommand(t *testing.T) {
	code, out, _ := runCLI(t, "devices")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"Virtex-4 LX100", "Stratix-II EP2S180", "48-bit DSPs", "ALUTs"} {
		if !strings.Contains(out, want) {
			t.Errorf("device table missing %q:\n%s", want, out)
		}
	}
}

func TestUsageAndErrors(t *testing.T) {
	if code, _, errOut := runCLI(t); code != 2 || !strings.Contains(errOut, "usage") {
		t.Error("no args must print usage and exit 2")
	}
	if code, _, errOut := runCLI(t, "conjure"); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Error("unknown command must exit 2")
	}
	if code, out, _ := runCLI(t, "help"); code != 0 || !strings.Contains(out, "usage") {
		t.Error("help must print usage")
	}
	// Missing worksheet.
	if code, _, errOut := runCLI(t, "predict"); code != 1 || !strings.Contains(errOut, "worksheet file is required") {
		t.Error("missing -f must fail")
	}
	// Nonexistent file.
	if code, _, _ := runCLI(t, "predict", "-f", "/does/not/exist.rat"); code != 1 {
		t.Error("missing file must fail")
	}
	// Bad flag.
	if code, _, _ := runCLI(t, "predict", "-nonsense"); code != 1 {
		t.Error("bad flag must fail")
	}
	// Bad clock list.
	sheet := writeSheet(t, "design.rat")
	if code, _, _ := runCLI(t, "predict", "-f", sheet, "-clocks", "fast"); code != 1 {
		t.Error("bad clock list must fail")
	}
}

func TestMalformedWorksheet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.rat")
	if err := os.WriteFile(path, []byte("[dataset]\nelements_in twelve\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCLI(t, "predict", "-f", path); code != 1 || !strings.Contains(errOut, "syntax error") {
		t.Errorf("malformed worksheet: exit %d, %s", code, errOut)
	}
}
