// Command rat analyzes an application design worksheet with the RC
// Amenability Test: forward performance prediction (the throughput
// test), inverse solving for the parallelism or clock a speedup goal
// requires, clock sweeps, uncertainty intervals, multi-FPGA scaling,
// and the full three-test methodology run.
//
// Usage:
//
//	rat predict -f design.rat [-double] [-clocks 75,100,150]
//	rat solve   -f design.rat -target 10 [-for throughput|clock|alpha] [-double]
//	rat sweep   -f design.rat [-min 50] [-max 200] [-steps 7] [-double]
//	rat bounds  -f design.rat [-alpha 0.2] [-ops 0.1] [-proc 0.25] [-clock 0.33] [-tsoft 0.05] [-target 10]
//	rat multi   -f design.rat [-devices 8] [-shared|-independent]
//	rat check   -f design.rat -target 10 -device "Virtex-4 LX100" -dsp 8 -bram 36 -logic 6800 [-tol 0.03]
//	rat example            # print a template worksheet (the paper's Table 2)
//	rat devices            # list the FPGA device database
//
// Worksheet files use the text format documented in the library
// (see 'rat example'); files ending in .json use the JSON form.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand; it is the testable entry point.
func run(args []string, out, errOut io.Writer) int {
	if len(args) < 1 {
		usage(errOut)
		return 2
	}
	var err error
	switch args[0] {
	case "predict":
		err = cmdPredict(args[1:], out)
	case "solve":
		err = cmdSolve(args[1:], out)
	case "sweep":
		err = cmdSweep(args[1:], out)
	case "bounds":
		err = cmdBounds(args[1:], out)
	case "multi":
		err = cmdMulti(args[1:], out)
	case "project":
		err = cmdProject(args[1:], out)
	case "validate":
		err = cmdValidate(args[1:], out)
	case "check":
		var verdictFail bool
		verdictFail, err = cmdCheck(args[1:], out)
		if err == nil && verdictFail {
			return 1
		}
	case "example":
		err = cmdExample(out)
	case "devices":
		err = cmdDevices(out)
	case "-h", "-help", "--help", "help":
		usage(out)
	default:
		fmt.Fprintf(errOut, "rat: unknown command %q\n", args[0])
		usage(errOut)
		return 2
	}
	if err != nil {
		fmt.Fprintf(errOut, "rat: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  rat predict -f design.rat [-double] [-clocks 75,100,150]
  rat solve   -f design.rat -target N [-for throughput|clock|alpha] [-double]
  rat sweep   -f design.rat [-min MHz] [-max MHz] [-steps N] [-double]
  rat bounds  -f design.rat [-alpha F] [-ops F] [-proc F] [-clock F] [-tsoft F] [-target N] [-double]
  rat multi   -f design.rat [-devices N] [-independent] [-double]
  rat check   -f design.rat -target N -device NAME -dsp N -bram N -logic N [-tol F]
  rat validate -f design.rat -comm SEC -comp SEC [-trc SEC] [-double]
  rat project -f project.json
  rat example
  rat devices
`)
}
