package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/methodology"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/resource"
	"github.com/chrec/rat/internal/validate"
	"github.com/chrec/rat/internal/worksheet"
)

// load reads and validates a worksheet file; .json files use the JSON
// form, everything else the text form.
func load(path string) (core.Parameters, error) {
	if path == "" {
		return core.Parameters{}, fmt.Errorf("a worksheet file is required (-f)")
	}
	f, err := os.Open(path)
	if err != nil {
		return core.Parameters{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return worksheet.DecodeJSON(f)
	}
	return worksheet.Decode(f)
}

func buffering(double bool) core.Buffering {
	if double {
		return core.DoubleBuffered
	}
	return core.SingleBuffered
}

func parseClocks(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		mhz, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad clock %q: %w", part, err)
		}
		out = append(out, core.MHz(mhz))
	}
	return out, nil
}

// newFlagSet builds a flag set that reports errors instead of exiting,
// so the command layer stays testable.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func cmdPredict(args []string, out io.Writer) error {
	fs := newFlagSet("predict")
	file := fs.String("f", "", "worksheet file")
	double := fs.Bool("double", false, "double-buffered overlap (default single)")
	clocks := fs.String("clocks", "", "comma-separated clock sweep in MHz (default: worksheet clock)")
	alphas := fs.String("alphas", "", "measured alpha-table file; re-derives the worksheet alphas at this design's transfer sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := load(*file)
	if err != nil {
		return err
	}
	if *alphas != "" {
		if err := applyAlphaTable(&p, *alphas, out); err != nil {
			return err
		}
	}
	hz := []float64{p.Comp.ClockHz}
	if *clocks != "" {
		if hz, err = parseClocks(*clocks); err != nil {
			return err
		}
	}
	b := buffering(*double)
	in := report.InputTable(p)
	if err := in.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	var cols []report.PerfColumn
	for _, f := range hz {
		pr, err := core.Predict(p.WithClock(f))
		if err != nil {
			return err
		}
		cols = append(cols, report.PredictionColumn(pr, b))
	}
	tbl := report.PerformanceTable(fmt.Sprintf("Predicted performance (%v)", b), cols)
	if err := tbl.Render(out); err != nil {
		return err
	}
	pr, err := core.Predict(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nasymptotic speedup limit (communication bound): %.1f\n", pr.MaxSpeedup())
	if fc, err := core.CrossoverClock(p); err == nil {
		fmt.Fprintf(out, "comm/compute crossover clock: %.0f MHz\n", fc/1e6)
	}
	return nil
}

// applyAlphaTable replaces the worksheet's alphas with values from a
// measured tabulation (docs/FORMATS.md), evaluated at the worksheet's
// own per-iteration transfer sizes — the discipline whose absence cost
// the 2-D PDF study a 6x communication surprise. Measured rates beyond
// the documented bandwidth clamp to alpha = 1.
func applyAlphaTable(p *core.Parameters, path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pts, err := platform.LoadAlphaTable(f)
	if err != nil {
		return err
	}
	ic, err := platform.InterconnectFromTable("measured", p.Comm.IdealThroughput, pts)
	if err != nil {
		return err
	}
	clamp := func(a float64) float64 {
		if a > 1 {
			return 1
		}
		return a
	}
	p.Comm.AlphaWrite = clamp(ic.MeasureAlpha(platform.Write, int64(p.BytesIn())))
	if p.Dataset.ElementsOut > 0 {
		p.Comm.AlphaRead = clamp(ic.MeasureAlpha(platform.Read, int64(p.BytesOut())))
	}
	fmt.Fprintf(out, "alphas from %s at %d/%d-byte transfers: %.3f write, %.3f read\n\n",
		path, int64(p.BytesIn()), int64(p.BytesOut()), p.Comm.AlphaWrite, p.Comm.AlphaRead)
	return nil
}

func cmdSolve(args []string, out io.Writer) error {
	fs := newFlagSet("solve")
	file := fs.String("f", "", "worksheet file")
	target := fs.Float64("target", 0, "speedup goal")
	what := fs.String("for", "throughput", "free variable: throughput, clock or alpha")
	double := fs.Bool("double", false, "double-buffered overlap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := load(*file)
	if err != nil {
		return err
	}
	b := buffering(*double)
	switch *what {
	case "throughput":
		v, err := core.SolveThroughputProc(p, *target, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "required throughput_proc: %.2f ops/cycle (worksheet has %g)\n", v, p.Comp.ThroughputProc)
	case "clock":
		v, err := core.SolveClock(p, *target, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "required f_clock: %.1f MHz (worksheet has %g)\n", v/1e6, p.Comp.ClockHz/1e6)
	case "alpha":
		v, err := core.SolveAlpha(p, *target, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "required alpha (both directions): %.3f", v)
		if v > 1 {
			fmt.Fprintf(out, " — infeasible on this interconnect")
		}
		fmt.Fprintln(out)
	default:
		return fmt.Errorf("unknown solve variable %q (want throughput, clock or alpha)", *what)
	}
	return nil
}

func cmdSweep(args []string, out io.Writer) error {
	fs := newFlagSet("sweep")
	file := fs.String("f", "", "worksheet file")
	minMHz := fs.Float64("min", 50, "lowest clock (MHz)")
	maxMHz := fs.Float64("max", 200, "highest clock (MHz)")
	steps := fs.Int("steps", 7, "number of sweep points")
	double := fs.Bool("double", false, "double-buffered overlap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *steps < 2 || *maxMHz <= *minMHz {
		return fmt.Errorf("need steps >= 2 and max > min")
	}
	p, err := load(*file)
	if err != nil {
		return err
	}
	b := buffering(*double)
	var clocks []float64
	for i := 0; i < *steps; i++ {
		mhz := *minMHz + (*maxMHz-*minMHz)*float64(i)/float64(*steps-1)
		clocks = append(clocks, core.MHz(mhz))
	}
	pts, err := core.SweepPoints(p, clocks, func(q core.Parameters, v float64) core.Parameters {
		return q.WithClock(v)
	})
	if err != nil {
		return err
	}
	tbl := report.Table{
		Title:   fmt.Sprintf("Clock sweep (%v)", b),
		Headers: []string{"f_clk (MHz)", "t_comp (sec)", "t_RC (sec)", "speedup", "regime"},
	}
	for _, pt := range pts {
		regime := "compute-bound"
		if pt.Prediction.CommunicationBound() {
			regime = "comm-bound"
		}
		tbl.AddRow(fmt.Sprintf("%.0f", pt.Value/1e6),
			report.FormatSci(pt.Prediction.TComp),
			report.FormatSci(pt.Prediction.TRC(b)),
			report.FormatSpeedup(pt.Prediction.Speedup(b)),
			regime)
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if bracket, ok := core.FindCrossover(pts); ok {
		fmt.Fprintf(out, "\nregime crossover between %.0f and %.0f MHz\n", bracket[0].Value/1e6, bracket[1].Value/1e6)
	}
	return nil
}

func cmdBounds(args []string, out io.Writer) error {
	fs := newFlagSet("bounds")
	file := fs.String("f", "", "worksheet file")
	alpha := fs.Float64("alpha", 0.2, "relative uncertainty of both alphas")
	ops := fs.Float64("ops", 0.1, "relative uncertainty of N_ops/element")
	proc := fs.Float64("proc", 0.25, "relative uncertainty of throughput_proc")
	clock := fs.Float64("clock", 1.0/3.0, "relative uncertainty of f_clock")
	tsoft := fs.Float64("tsoft", 0.05, "relative uncertainty of t_soft")
	target := fs.Float64("target", 0, "optional speedup goal to classify")
	double := fs.Bool("double", false, "double-buffered overlap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := load(*file)
	if err != nil {
		return err
	}
	b := buffering(*double)
	bounds, err := core.PredictBounds(p, core.Uncertainty{
		Alpha: *alpha, OpsPerElement: *ops, ThroughputProc: *proc, Clock: *clock, TSoft: *tsoft,
	})
	if err != nil {
		return err
	}
	lo, hi := bounds.SpeedupRange(b)
	tlo, thi := bounds.TRCRange(b)
	fmt.Fprintf(out, "speedup: %.1f .. %.1f (nominal %.1f)\n", lo, hi, bounds.Nominal.Speedup(b))
	fmt.Fprintf(out, "t_RC:    %s .. %s s (nominal %s)\n",
		report.FormatSci(tlo), report.FormatSci(thi), report.FormatSci(bounds.Nominal.TRC(b)))
	if *target > 0 {
		fmt.Fprintf(out, "%gx goal: %v\n", *target, bounds.MeetsTarget(*target, b))
	}
	return nil
}

func cmdMulti(args []string, out io.Writer) error {
	fs := newFlagSet("multi")
	file := fs.String("f", "", "worksheet file")
	devices := fs.Int("devices", 8, "maximum device count to tabulate")
	independent := fs.Bool("independent", false, "one interconnect per device (default: shared channel)")
	double := fs.Bool("double", false, "double-buffered overlap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *devices < 1 {
		return fmt.Errorf("need at least one device")
	}
	p, err := load(*file)
	if err != nil {
		return err
	}
	topo := core.SharedChannel
	if *independent {
		topo = core.IndependentChannels
	}
	b := buffering(*double)
	knee, err := core.ScalingKnee(p)
	if err != nil {
		return err
	}
	tbl := report.Table{
		Title:   fmt.Sprintf("Multi-FPGA scaling (%v, %v; shared-channel knee at %.1f devices)", topo, b, knee),
		Headers: []string{"Devices", "t_RC (sec)", "speedup", "efficiency"},
	}
	for n := 1; n <= *devices; n *= 2 {
		mp, err := core.PredictMulti(p, core.MultiConfig{Devices: n, Topology: topo})
		if err != nil {
			return err
		}
		trc, sp := mp.TRCSingle, mp.SpeedupSingle
		if b == core.DoubleBuffered {
			trc, sp = mp.TRCDouble, mp.SpeedupDouble
		}
		tbl.AddRow(fmt.Sprintf("%d", n), report.FormatSci(trc),
			report.FormatSpeedup(sp), fmt.Sprintf("%.2f", mp.ScalingEfficiency))
	}
	return tbl.Render(out)
}

func cmdCheck(args []string, out io.Writer) (verdictFail bool, err error) {
	fs := newFlagSet("check")
	file := fs.String("f", "", "worksheet file")
	target := fs.Float64("target", 0, "speedup goal")
	double := fs.Bool("double", false, "double-buffered overlap")
	device := fs.String("device", "", "target FPGA (see 'rat devices')")
	dsp := fs.Int("dsp", 0, "estimated DSP/multiplier demand")
	bram := fs.Int("bram", 0, "estimated BRAM demand")
	logic := fs.Int("logic", 0, "estimated logic demand")
	tol := fs.Float64("tol", 0, "numerical error tolerance (0 skips the precision test)")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	p, err := load(*file)
	if err != nil {
		return false, err
	}
	dev, ok := resource.Lookup(*device)
	if !ok {
		return false, fmt.Errorf("unknown device %q (see 'rat devices')", *device)
	}
	res, err := methodology.Evaluate(methodology.Requirements{
		TargetSpeedup:  *target,
		Buffering:      buffering(*double),
		ErrorTolerance: *tol,
	}, methodology.Design{
		Params: p,
		Demand: resource.Demand{DSP: *dsp, BRAM: *bram, Logic: *logic},
		Device: dev,
	})
	if err != nil {
		return false, err
	}
	for _, s := range res.Steps {
		mark := "pass"
		if !s.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(out, "[%s] %-10s %s\n", mark, s.Step, s.Detail)
	}
	fmt.Fprintf(out, "verdict: %v\n", res.Verdict)
	return res.Verdict != methodology.Proceed, nil
}

func cmdProject(args []string, out io.Writer) error {
	fs := newFlagSet("project")
	file := fs.String("f", "", "project file (JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("a project file is required (-f)")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	name, stages, err := worksheet.DecodeProject(f)
	if err != nil {
		return err
	}
	res, err := core.PredictComposite(stages)
	if err != nil {
		return err
	}
	if name == "" {
		name = *file
	}
	tbl := report.Table{
		Title:   fmt.Sprintf("Composite analysis: %s", name),
		Headers: []string{"Stage", "Buffering", "t_RC (sec)", "Share", "Speedup alone"},
	}
	for _, st := range res.Stages {
		tbl.AddRow(st.Stage.Name, st.Stage.Buffering.String(),
			report.FormatSci(st.TRC), report.FormatPercent(st.Share),
			report.FormatSpeedup(st.Prediction.Speedup(st.Stage.Buffering)))
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ncomposite: t_RC %s s, t_soft %g s, speedup %.1f\n",
		report.FormatSci(res.TRC), res.TSoft, res.Speedup)
	fmt.Fprintf(out, "bottleneck: %s (%.0f%% of execution) — reformulate that stage first\n",
		res.Bottleneck().Stage.Name, res.Bottleneck().Share*100)
	return nil
}

func cmdValidate(args []string, out io.Writer) error {
	fs := newFlagSet("validate")
	file := fs.String("f", "", "worksheet file")
	comm := fs.Float64("comm", 0, "measured per-iteration communication time (s)")
	comp := fs.Float64("comp", 0, "measured per-iteration computation time (s)")
	trc := fs.Float64("trc", 0, "measured end-to-end time (s; 0 derives from components)")
	double := fs.Bool("double", false, "double-buffered overlap")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := load(*file)
	if err != nil {
		return err
	}
	pr, err := core.Predict(p)
	if err != nil {
		return err
	}
	a, err := validate.Compare(pr, validate.Measured{TComm: *comm, TComp: *comp, TRC: *trc}, buffering(*double))
	if err != nil {
		return err
	}
	tbl := report.Table{
		Title:   "Prediction vs measurement",
		Headers: []string{"Term", "Predicted", "Measured", "Error", "Verdict"},
	}
	for _, term := range a.Terms {
		tbl.AddRow(term.Name,
			report.FormatSci(term.Predicted), report.FormatSci(term.Measured),
			fmt.Sprintf("%+.0f%%", term.Error*100), term.Verdict.String())
	}
	if err := tbl.Render(out); err != nil {
		return err
	}
	if a.SpeedupPredicted > 0 {
		fmt.Fprintf(out, "\nspeedup: %.1f predicted, %.1f measured\n", a.SpeedupPredicted, a.SpeedupMeasured)
	}
	fmt.Fprintln(out, "\ndiagnosis:")
	for _, n := range a.Notes {
		fmt.Fprintf(out, "  - %s\n", n)
	}
	return nil
}

func cmdExample(out io.Writer) error {
	return worksheet.Encode(out, paper.PDF1DParams())
}

func cmdDevices(out io.Writer) error {
	tbl := report.Table{
		Title:   "FPGA device database",
		Headers: []string{"Device", "Vendor", "Logic", "BRAM blocks", "DSP units"},
	}
	for _, d := range resource.Devices() {
		tbl.AddRow(d.Name, string(d.Vendor),
			fmt.Sprintf("%d %s", d.LogicCells, d.LogicName),
			fmt.Sprintf("%d x %d kbit", d.BRAMBlocks, d.BRAMBits/1024),
			fmt.Sprintf("%d %s", d.DSPBlocks, d.DSPName))
	}
	return tbl.Render(out)
}
