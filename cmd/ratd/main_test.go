package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/chrec/rat/internal/api"
	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// syncBuffer is a bytes.Buffer safe to share between the daemon
// goroutine and the test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// listenAddr extracts host:port from the "ratd: listening on ..."
// line, polling until the server goroutine prints it.
func listenAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "ratd: listening on "); ok {
				return rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ratd never printed its listen address; output:\n%s", out.String())
	return ""
}

// TestRunServeDrainExitZero is the end-to-end daemon test: start on an
// ephemeral port, serve a real prediction bit-for-bit, then deliver
// SIGTERM and watch the drain finish with exit code 0.
func TestRunServeDrainExitZero(t *testing.T) {
	var out, errOut syncBuffer
	sig := make(chan os.Signal, 1)
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errOut, sig)
	}()
	addr := listenAddr(t, &out)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	p := paper.PDF1DParams()
	var body bytes.Buffer
	if err := worksheet.EncodeJSON(&body, p); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/predict", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	var wire api.Prediction
	derr := json.NewDecoder(resp.Body).Decode(&wire)
	resp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	want, err := core.Predict(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := wire.Core(); got != want {
		t.Error("daemon prediction differs from core.Predict")
	}

	sig <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != 0 {
			t.Errorf("exit code %d after graceful drain, want 0\nstderr: %s", c, errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("ratd did not exit after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still serving after drain")
	}
	if !strings.Contains(out.String(), "ratd: drained, exiting") {
		t.Errorf("missing drain message; output:\n%s", out.String())
	}
}

// TestRunUsageErrors: flag and argument mistakes exit 2 without
// binding a port.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-arg"},
	} {
		var out, errOut syncBuffer
		if code := run(args, &out, &errOut, nil); code != 2 {
			t.Errorf("run(%q) = %d, want 2", args, code)
		}
		if !strings.Contains(errOut.String(), "usage") {
			t.Errorf("run(%q) stderr lacks usage hint: %s", args, errOut.String())
		}
	}
}

// TestRunListenFailure: an unbindable address is a runtime failure
// (exit 1), not a usage error.
func TestRunListenFailure(t *testing.T) {
	var out, errOut syncBuffer
	if code := run([]string{"-addr", "256.0.0.1:99999"}, &out, &errOut, nil); code != 1 {
		t.Errorf("exit code %d for bad listen address, want 1", code)
	}
}

// accessLogLine is the slog JSONL schema of one access-log record.
type accessLogLine struct {
	Msg      string `json:"msg"`
	Method   string `json:"method"`
	Path     string `json:"path"`
	Status   int    `json:"status"`
	DurUs    int64  `json:"dur_us"`
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	StagesNs string `json:"stages_ns"`
}

// TestAccessLogJSONL: with -access-log the daemon writes one
// structured slog record per request, with a server-minted trace ID.
func TestAccessLogJSONL(t *testing.T) {
	logPath := t.TempDir() + "/access.jsonl"
	var out, errOut syncBuffer
	sig := make(chan os.Signal, 1)
	code := make(chan int, 1)
	go func() {
		code <- run([]string{"-addr", "127.0.0.1:0", "-access-log", logPath}, &out, &errOut, sig)
	}()
	addr := listenAddr(t, &out)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echoed := resp.Header.Get("X-Rat-Trace")

	sig <- syscall.SIGTERM
	if c := <-code; c != 0 {
		t.Fatalf("exit code %d", c)
	}

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("access log has %d lines, want 1:\n%s", len(lines), data)
	}
	var event accessLogLine
	if err := json.Unmarshal([]byte(lines[0]), &event); err != nil {
		t.Fatal(err)
	}
	if event.Msg != "request" || event.Method != "GET" || event.Path != "/healthz" || event.Status != 200 {
		t.Errorf("event = %+v, want request / GET /healthz 200", event)
	}
	if event.TraceID == "" || !strings.HasPrefix(echoed, event.TraceID+"-") {
		t.Errorf("log trace_id %q does not match response header %q", event.TraceID, echoed)
	}
}

// TestAccessLogFlushOnDrain: a request still in flight when SIGTERM
// lands must have its log line on disk by the time ratd exits 0 — the
// buffered sink is flushed after the drain, not abandoned.
func TestAccessLogFlushOnDrain(t *testing.T) {
	logPath := t.TempDir() + "/access.jsonl"
	var out, errOut syncBuffer
	sig := make(chan os.Signal, 1)
	code := make(chan int, 1)
	go func() {
		// A long linger holds single predicts in the batcher, so the
		// request below is reliably in flight when the signal lands.
		code <- run([]string{"-addr", "127.0.0.1:0", "-access-log", logPath,
			"-max-batch", "16", "-linger", "300ms"}, &out, &errOut, sig)
	}()
	addr := listenAddr(t, &out)

	const trace = "00000000deadbeef-00000001"
	done := make(chan error, 1)
	go func() {
		var body bytes.Buffer
		if err := worksheet.EncodeJSON(&body, paper.PDF1DParams()); err != nil {
			done <- err
			return
		}
		req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/predict", &body)
		if err != nil {
			done <- err
			return
		}
		req.Header.Set("X-Rat-Trace", trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		resp.Body.Close()
		done <- nil
	}()

	time.Sleep(100 * time.Millisecond) // request is now lingering in the batcher
	sig <- syscall.SIGTERM
	if c := <-code; c != 0 {
		t.Fatalf("exit code %d\nstderr: %s", c, errOut.String())
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed across drain: %v", err)
	}

	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ln := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var event accessLogLine
		if json.Unmarshal([]byte(ln), &event) == nil &&
			event.Path == "/v1/predict" && event.TraceID == "00000000deadbeef" {
			found = true
			if event.Status != 200 {
				t.Errorf("in-flight request logged status %d, want 200", event.Status)
			}
		}
	}
	if !found {
		t.Errorf("drained access log lacks the in-flight request's line:\n%s", data)
	}
}
