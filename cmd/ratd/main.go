// Command ratd is the RAT prediction service: an HTTP/JSON daemon
// serving throughput-test predictions (single and multi-FPGA), batch
// predictions and bounded design-space explorations from the worksheet
// JSON format.
//
// Usage:
//
//	ratd [-addr :8080] [-access-log ratd.jsonl]
//	ratd -addr 127.0.0.1:0            # ephemeral port, printed on stdout
//	ratd -max-batch 32 -linger 1ms -cache-size 4096
//	ratd -predict-limit 128 -explore-limit 4 -admission-wait 20ms
//	ratd -tenants tenants.json               # multi-tenant admission
//
// With -tenants, every API request must carry a configured key and is
// admitted against its tenant's token bucket and concurrency cap (see
// docs/TENANCY.md); SIGHUP reloads the file in place, preserving live
// bucket state.
//
// The daemon prints one line, "ratd: listening on <host:port>", once
// the listener is up, and drains gracefully on SIGINT/SIGTERM: the
// readiness probe flips to 503, in-flight requests finish (bounded by
// -drain-timeout), and the process exits 0. Exit codes follow the
// shared contract: 0 success, 1 runtime failure, 2 usage error. See
// docs/SERVER.md for the API and the operational runbook.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/chrec/rat/internal/cli"
	"github.com/chrec/rat/internal/server"
	"github.com/chrec/rat/internal/tenant"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is the testable entry point; tests inject the signal channel to
// drive a drain.
func run(args []string, out, errOut io.Writer, sig <-chan os.Signal) int {
	err := serve(args, out, sig)
	if err != nil {
		fmt.Fprintf(errOut, "ratd: %v\n", err)
		if errors.Is(err, cli.ErrUsage) {
			fmt.Fprintln(errOut, "usage: ratd [flags] (run ratd -help for the flag list)")
		}
	}
	return cli.Code(err)
}

func serve(args []string, out io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("ratd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks one)")
	maxBatch := fs.Int("max-batch", 0, "max coalesced predict batch (0 = default 16, 1 disables)")
	linger := fs.Duration("linger", 0, "max wait for an under-filled batch (0 = default 2ms)")
	cacheSize := fs.Int("cache-size", 0, "response cache entries (0 = default 1024, negative disables)")
	predictLimit := fs.Int("predict-limit", 0, "concurrent /v1/predict requests (0 = default 64)")
	batchLimit := fs.Int("batch-limit", 0, "concurrent /v1/predict/batch worksheet weight (0 = default 16)")
	exploreLimit := fs.Int("explore-limit", 0, "concurrent /v1/explore requests (0 = default 2)")
	admissionWait := fs.Duration("admission-wait", 0, "max queue wait before 429 (0 = default 10ms)")
	predictTimeout := fs.Duration("predict-timeout", 0, "per-request predict deadline (0 = default 10s)")
	exploreTimeout := fs.Duration("explore-timeout", 0, "per-request explore deadline (0 = default 2m)")
	maxCandidates := fs.Uint64("max-explore-candidates", 0, "largest grid a single explore may ask for (0 = default 4Mi)")
	maxDistributed := fs.Uint64("max-distributed-candidates", 0, "largest candidate span a distributed explore may coordinate (0 = default 1Gi)")
	exploreWorkers := fs.Int("explore-workers", 0, "workers per exploration (0 = one per CPU)")
	accessLog := fs.String("access-log", "", "JSONL access log path (- for stdout, empty disables)")
	tenantsFile := fs.String("tenants", "", "tenant config JSON (enables multi-tenant admission; SIGHUP reloads)")
	exploreCost := fs.Float64("explore-cost", 0, "token-bucket cost of one explore request (0 = default 16)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests at shutdown")
	if err := fs.Parse(args); err != nil {
		return cli.WrapUsage(err)
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected argument %q", fs.Arg(0))
	}

	cfg := server.Config{
		MaxBatch:                 *maxBatch,
		Linger:                   *linger,
		CacheSize:                *cacheSize,
		PredictLimit:             *predictLimit,
		BatchLimit:               *batchLimit,
		ExploreLimit:             *exploreLimit,
		AdmissionWait:            *admissionWait,
		PredictTimeout:           *predictTimeout,
		ExploreTimeout:           *exploreTimeout,
		MaxExploreCandidates:     *maxCandidates,
		MaxDistributedCandidates: *maxDistributed,
		ExploreWorkers:           *exploreWorkers,
		ExploreTokenCost:         *exploreCost,
	}

	// Multi-tenant admission: keys, quotas and concurrency caps come
	// from the -tenants JSON file. SIGHUP swaps in an edited file
	// atomically, preserving live bucket fills; a broken edit is
	// logged and the running tenant set stays untouched.
	var tenants *tenant.Registry
	if *tenantsFile != "" {
		reg, err := tenant.Load(*tenantsFile)
		if err != nil {
			return cli.WrapUsage(fmt.Errorf("tenants: %w", err))
		}
		tenants = reg
		cfg.Tenants = reg
	}

	// The access log is structured slog JSONL: one "request" record per
	// request with method, path, status, duration, trace/span IDs and
	// the per-stage nanosecond breakdown. File output is buffered;
	// logFlush is called after the drain completes (no writers left) so
	// the last in-flight request's line is on disk before exit 0.
	var logFlush func() error
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLogger = slog.New(slog.NewJSONHandler(out, nil))
	default:
		f, err := os.Create(*accessLog)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		bw := bufio.NewWriter(f)
		cfg.AccessLogger = slog.New(slog.NewJSONHandler(bw, nil))
		logFlush = func() error {
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	srv := server.New(cfg)
	fmt.Fprintf(out, "ratd: listening on %s\n", l.Addr())

	if tenants != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if err := tenants.ReloadFile(*tenantsFile); err != nil {
					fmt.Fprintf(out, "ratd: tenants reload failed (keeping previous set): %v\n", err)
					continue
				}
				fmt.Fprintf(out, "ratd: tenants reloaded from %s (%d tenants)\n", *tenantsFile, tenants.Len())
			}
		}()
	}

	served := make(chan error, 1)
	go func() { served <- srv.Serve(l) }()

	select {
	case err := <-served:
		// Serve failed before any signal — a runtime error (the listener
		// died out from under us).
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(out, "ratd: %v: draining (up to %v)\n", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	if logFlush != nil {
		if err := logFlush(); err != nil {
			return fmt.Errorf("access log: %w", err)
		}
	}
	fmt.Fprintln(out, "ratd: drained, exiting")
	return nil
}
