GO ?= go

.PHONY: all build test vet lint race bench bench-baseline bench-check experiments examples cover clean loadtest obs-smoke tenant-smoke cluster-smoke

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant analyzers: determinism, hot-path allocations, exit
# codes, error wrapping, metric names. See docs/LINT.md.
lint:
	$(GO) run ./cmd/ratlint ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus library hot paths.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the committed micro-benchmark baseline (BENCH_5.json) from
# the hot-path benchmarks. Run on a quiet machine; commit the result.
# BenchmarkServerPredict with no anchor matches the whole served-path
# family: steady-state, Uncached, CachedHit, Binary, Traced, Tenanted.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictBatch|BenchmarkSweepClock|BenchmarkSimulatePDF1D$$|BenchmarkExplore1Worker|BenchmarkServerPredict' -benchmem -count=1 . ./internal/server \
	  | $(GO) run ./cmd/benchcheck -emit BENCH_5.json -note "make bench-baseline"

# Gate the current tree against the committed baseline: fails on a
# >20% ns/op or bytes/op regression in the gated benchmarks (the
# prediction kernel plus the served predict path — steady state,
# cached hit, binary wire and tenanted, so server overhead stays
# sub-2µs and the hit path stays at zero allocations) or any allocs/op
# increase anywhere.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictBatch|BenchmarkSweepClock|BenchmarkSimulatePDF1D$$|BenchmarkExplore1Worker|BenchmarkServerPredict' -benchmem -benchtime 0.5s -count=1 . ./internal/server \
	  | $(GO) run ./cmd/benchcheck -compare BENCH_5.json -gate BenchmarkPredict,BenchmarkServerPredict,BenchmarkServerPredictCachedHit,BenchmarkServerPredictBinary,BenchmarkServerPredictTenanted

# Closed-loop load test against a locally built ratd: start the
# daemon on LOADTEST_ADDR, wait for /healthz, drive it with ratload,
# then SIGTERM and verify the graceful drain exits 0.
LOADTEST_ADDR ?= 127.0.0.1:18080
LOADTEST_ARGS ?= -c 8 -duration 5s
loadtest:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ratd ./cmd/ratd; \
	$(GO) build -o $$tmp/ratload ./cmd/ratload; \
	"$$tmp/ratd" -addr $(LOADTEST_ADDR) & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if curl -fs http://$(LOADTEST_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
	  sleep 0.1; \
	done; \
	test $$up = 1 || { echo "loadtest: ratd never became healthy"; exit 1; }; \
	"$$tmp/ratload" -url http://$(LOADTEST_ADDR) $(LOADTEST_ARGS); \
	kill -TERM $$pid; wait $$pid

# Observability smoke: start ratd, drive 100 traced requests through
# ratload, then assert that every trace ID round-tripped, the stage
# histograms are populated, and /v1/status reports the traffic.
OBS_SMOKE_ADDR ?= 127.0.0.1:18081
obs-smoke:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ratd ./cmd/ratd; \
	$(GO) build -o $$tmp/ratload ./cmd/ratload; \
	"$$tmp/ratd" -addr $(OBS_SMOKE_ADDR) & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if curl -fs http://$(OBS_SMOKE_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
	  sleep 0.1; \
	done; \
	test $$up = 1 || { echo "obs-smoke: ratd never became healthy"; exit 1; }; \
	"$$tmp/ratload" -url http://$(OBS_SMOKE_ADDR) -c 4 -n 100 -traces 5 -duration 60s | tee $$tmp/report; \
	grep -q 'traces: 100/100 echoed' $$tmp/report \
	  || { echo "obs-smoke: trace IDs did not round-trip"; exit 1; }; \
	grep -q 'kernel=' $$tmp/report \
	  || { echo "obs-smoke: slowest-trace report lacks stage breakdowns"; exit 1; }; \
	curl -fs -H 'Accept: text/plain; version=0.0.4' http://$(OBS_SMOKE_ADDR)/metrics > $$tmp/metrics; \
	grep -q 'rat_stage_seconds_bucket{stage="kernel"' $$tmp/metrics \
	  || { echo "obs-smoke: stage histograms are empty"; exit 1; }; \
	grep -q 'rat_requests_total{code="200",endpoint="predict"} 100' $$tmp/metrics \
	  || { echo "obs-smoke: request counter does not show the 100 predicts"; exit 1; }; \
	curl -fs http://$(OBS_SMOKE_ADDR)/v1/status | grep -q '"predict":{"requests":100' \
	  || { echo "obs-smoke: /v1/status does not report the traffic"; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "obs-smoke: OK"

# Multi-tenant isolation smoke: start ratd with two configured
# tenants, run the noisy-neighbor mix (hostile tenant flat out at far
# above its quota, compliant tenant paced inside its own), and assert
# from the per-tenant report lines that isolation held: the compliant
# tenant saw zero 429s while the hostile tenant was shed.
TENANT_SMOKE_ADDR ?= 127.0.0.1:18082
tenant-smoke:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ratd ./cmd/ratd; \
	$(GO) build -o $$tmp/ratload ./cmd/ratload; \
	printf '%s' '{"tenants": [' \
	  '{"name": "compliant", "key": "smoke-ck", "rate_per_sec": 1000, "burst": 1000},' \
	  '{"name": "hostile", "key": "smoke-hk", "rate_per_sec": 5, "burst": 5, "max_inflight": 2}]}' \
	  > $$tmp/tenants.json; \
	"$$tmp/ratd" -addr $(TENANT_SMOKE_ADDR) -tenants $$tmp/tenants.json & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if curl -fs http://$(TENANT_SMOKE_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
	  sleep 0.1; \
	done; \
	test $$up = 1 || { echo "tenant-smoke: ratd never became healthy"; exit 1; }; \
	curl -fs -X POST http://$(TENANT_SMOKE_ADDR)/v1/predict -o /dev/null -w '%{http_code}\n' \
	  | grep -q 401 || { echo "tenant-smoke: keyless request was not rejected with 401"; exit 1; }; \
	"$$tmp/ratload" -url http://$(TENANT_SMOKE_ADDR) -mix noisy-neighbor \
	  -key-compliant smoke-ck -key-hostile smoke-hk \
	  -c 8 -duration 5s -compliant-qps 20 | tee $$tmp/report; \
	grep -q '^tenant compliant: .*rejected_429=0 ' $$tmp/report \
	  || { echo "tenant-smoke: compliant tenant was rejected — isolation failed"; exit 1; }; \
	grep '^tenant hostile: ' $$tmp/report | grep -vq ' rejected_429=0 ' \
	  || { echo "tenant-smoke: hostile tenant was never shed — quota not enforced"; exit 1; }; \
	curl -fs -H 'Accept: text/plain; version=0.0.4' http://$(TENANT_SMOKE_ADDR)/metrics > $$tmp/metrics; \
	grep -q 'rat_tenant_rejections_total{reason="quota",tenant="hostile"}' $$tmp/metrics \
	  || { echo "tenant-smoke: /metrics lacks the per-tenant rejection counter"; exit 1; }; \
	grep -q 'rat_brownout_level' $$tmp/metrics \
	  || { echo "tenant-smoke: /metrics lacks rat_brownout_level"; exit 1; }; \
	kill -TERM $$pid; wait $$pid; \
	echo "tenant-smoke: OK"

# Distributed-explore smoke: boot a three-ratd fleet, shard the same
# grid across 1, 2 and 3 workers with ratctl, and byte-compare every
# run's JSONL against a single-node `ratsim explore` — the determinism
# contract of docs/DISTRIBUTED.md, end to end over real HTTP. Then
# kill -9 one worker in the middle of a bigger run and assert the
# merged output is STILL byte-identical, and finish with ratload's
# repeated-request parity check through the server-side coordinator.
CLUSTER_SMOKE_PORT1 ?= 18083
CLUSTER_SMOKE_PORT2 ?= 18084
CLUSTER_SMOKE_PORT3 ?= 18085
cluster-smoke:
	@set -e; tmp=$$(mktemp -d); pid1=""; pid2=""; pid3=""; cpid=""; \
	trap 'kill $$pid1 $$pid2 $$pid3 $$cpid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ratd ./cmd/ratd; \
	$(GO) build -o $$tmp/ratctl ./cmd/ratctl; \
	$(GO) build -o $$tmp/ratsim ./cmd/ratsim; \
	$(GO) build -o $$tmp/ratload ./cmd/ratload; \
	"$$tmp/ratd" -addr 127.0.0.1:$(CLUSTER_SMOKE_PORT1) & pid1=$$!; \
	"$$tmp/ratd" -addr 127.0.0.1:$(CLUSTER_SMOKE_PORT2) & pid2=$$!; \
	"$$tmp/ratd" -addr 127.0.0.1:$(CLUSTER_SMOKE_PORT3) & pid3=$$!; \
	for port in $(CLUSTER_SMOKE_PORT1) $(CLUSTER_SMOKE_PORT2) $(CLUSTER_SMOKE_PORT3); do \
	  up=0; for i in $$(seq 1 50); do \
	    if curl -fs http://127.0.0.1:$$port/healthz >/dev/null 2>&1; then up=1; break; fi; \
	    sleep 0.1; \
	  done; \
	  test $$up = 1 || { echo "cluster-smoke: ratd on $$port never became healthy"; exit 1; }; \
	done; \
	W1=http://127.0.0.1:$(CLUSTER_SMOKE_PORT1); \
	W2=http://127.0.0.1:$(CLUSTER_SMOKE_PORT2); \
	W3=http://127.0.0.1:$(CLUSTER_SMOKE_PORT3); \
	"$$tmp/ratctl" status -workers $$W1,$$W2,$$W3 > $$tmp/status; \
	test "$$(grep -c ': up ' $$tmp/status)" = 3 \
	  || { echo "cluster-smoke: ratctl status does not see 3 healthy workers"; cat $$tmp/status; exit 1; }; \
	GRID="-case pdf1d -clocks 75,100,150 -tp 10,20,40 -alphas 0.16,0.37 -blocks 512,2048 -devices 1,4 -topology independent -top 10 -frontier"; \
	"$$tmp/ratsim" explore $$GRID -jsonl > $$tmp/single.jsonl; \
	for workers in "$$W1" "$$W1,$$W2" "$$W1,$$W2,$$W3"; do \
	  "$$tmp/ratctl" explore -workers $$workers -shard-size 7 -jsonl $$GRID > $$tmp/fleet.jsonl 2>/dev/null; \
	  cmp -s $$tmp/single.jsonl $$tmp/fleet.jsonl \
	    || { echo "cluster-smoke: fleet ($$workers) output diverges from single-node"; exit 1; }; \
	done; \
	echo "cluster-smoke: 1, 2 and 3 workers byte-identical with single-node"; \
	BIG="-case pdf1d -clocks 25,50,75,100,125,150,175,200 -tp 5,10,20,40 -alphas 0.1,0.16,0.25,0.37 -blocks 512,1024,2048,4096 -devices 1,2,4 -topology independent -top 10 -frontier"; \
	"$$tmp/ratsim" explore $$BIG -jsonl > $$tmp/single_big.jsonl; \
	"$$tmp/ratctl" explore -workers $$W1,$$W2,$$W3 -shard-size 4 -jsonl $$BIG \
	  > $$tmp/fleet_kill.jsonl 2> $$tmp/kill.log & cpid=$$!; \
	sleep 0.3; kill -9 $$pid3; \
	wait $$cpid || { echo "cluster-smoke: run did not survive losing a worker"; cat $$tmp/kill.log; exit 1; }; \
	cpid=""; \
	cmp -s $$tmp/single_big.jsonl $$tmp/fleet_kill.jsonl \
	  || { echo "cluster-smoke: output diverged after killing a worker mid-run"; exit 1; }; \
	grep -q 'explored 3072 candidates' $$tmp/kill.log \
	  || { echo "cluster-smoke: kill-run summary missing"; cat $$tmp/kill.log; exit 1; }; \
	echo "cluster-smoke: byte-identical after kill -9 of one worker mid-run"; \
	"$$tmp/ratload" -url $$W1 -distributed $$W1,$$W2 -rounds 5 -timeout 60s | tee $$tmp/parity; \
	grep -q 'distributed parity: 5/5 identical responses' $$tmp/parity \
	  || { echo "cluster-smoke: repeated distributed responses diverged"; exit 1; }; \
	kill -TERM $$pid1 $$pid2; wait $$pid1 $$pid2; pid1=""; pid2=""; pid3=""; \
	echo "cluster-smoke: OK"

# Regenerate every paper table and figure, side by side with the
# published values.
experiments:
	$(GO) run ./cmd/ratbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pdf1d
	$(GO) run ./examples/pdf2d
	$(GO) run ./examples/md
	$(GO) run ./examples/sweep
	$(GO) run ./examples/explore
	$(GO) run ./examples/multifpga
	$(GO) run ./examples/convolution

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
