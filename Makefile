GO ?= go

.PHONY: all build test vet race bench bench-baseline bench-check experiments examples cover clean loadtest

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus library hot paths.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the committed micro-benchmark baseline (BENCH_4.json) from
# the hot-path benchmarks. Run on a quiet machine; commit the result.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictBatch|BenchmarkSweepClock|BenchmarkSimulatePDF1D$$|BenchmarkExplore1Worker|BenchmarkServerPredict$$' -benchmem -count=1 . ./internal/server \
	  | $(GO) run ./cmd/benchcheck -emit BENCH_4.json -note "make bench-baseline"

# Gate the current tree against the committed baseline: fails on a
# >20% BenchmarkPredict ns/op regression or any allocs/op increase.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictBatch|BenchmarkSweepClock|BenchmarkSimulatePDF1D$$|BenchmarkExplore1Worker|BenchmarkServerPredict$$' -benchmem -benchtime 0.2s -count=1 . ./internal/server \
	  | $(GO) run ./cmd/benchcheck -compare BENCH_4.json

# Closed-loop load test against a locally built ratd: start the
# daemon on LOADTEST_ADDR, wait for /healthz, drive it with ratload,
# then SIGTERM and verify the graceful drain exits 0.
LOADTEST_ADDR ?= 127.0.0.1:18080
LOADTEST_ARGS ?= -c 8 -duration 5s
loadtest:
	@set -e; tmp=$$(mktemp -d); pid=""; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ratd ./cmd/ratd; \
	$(GO) build -o $$tmp/ratload ./cmd/ratload; \
	"$$tmp/ratd" -addr $(LOADTEST_ADDR) & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
	  if curl -fs http://$(LOADTEST_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
	  sleep 0.1; \
	done; \
	test $$up = 1 || { echo "loadtest: ratd never became healthy"; exit 1; }; \
	"$$tmp/ratload" -url http://$(LOADTEST_ADDR) $(LOADTEST_ARGS); \
	kill -TERM $$pid; wait $$pid

# Regenerate every paper table and figure, side by side with the
# published values.
experiments:
	$(GO) run ./cmd/ratbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pdf1d
	$(GO) run ./examples/pdf2d
	$(GO) run ./examples/md
	$(GO) run ./examples/sweep
	$(GO) run ./examples/explore
	$(GO) run ./examples/multifpga
	$(GO) run ./examples/convolution

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
