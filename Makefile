GO ?= go

.PHONY: all build test vet race bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus library hot paths.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure, side by side with the
# published values.
experiments:
	$(GO) run ./cmd/ratbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pdf1d
	$(GO) run ./examples/pdf2d
	$(GO) run ./examples/md
	$(GO) run ./examples/sweep
	$(GO) run ./examples/multifpga
	$(GO) run ./examples/convolution

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
