GO ?= go

.PHONY: all build test vet race bench bench-baseline bench-check experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus library hot paths.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the committed micro-benchmark baseline (BENCH_4.json) from
# the hot-path benchmarks. Run on a quiet machine; commit the result.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictBatch|BenchmarkSweepClock|BenchmarkSimulatePDF1D$$|BenchmarkExplore1Worker' -benchmem -count=1 . \
	  | $(GO) run ./cmd/benchcheck -emit BENCH_4.json -note "make bench-baseline"

# Gate the current tree against the committed baseline: fails on a
# >20% BenchmarkPredict ns/op regression or any allocs/op increase.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkPredict$$|BenchmarkPredictBatch|BenchmarkSweepClock|BenchmarkSimulatePDF1D$$|BenchmarkExplore1Worker' -benchmem -benchtime 0.2s -count=1 . \
	  | $(GO) run ./cmd/benchcheck -compare BENCH_4.json

# Regenerate every paper table and figure, side by side with the
# published values.
experiments:
	$(GO) run ./cmd/ratbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pdf1d
	$(GO) run ./examples/pdf2d
	$(GO) run ./examples/md
	$(GO) run ./examples/sweep
	$(GO) run ./examples/explore
	$(GO) run ./examples/multifpga
	$(GO) run ./examples/convolution

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
