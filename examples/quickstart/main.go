// Quickstart: predict whether your application design is worth
// migrating to an FPGA, before writing any hardware code.
//
// The scenario: you have a software kernel that processes 64k-element
// blocks (4 bytes each) at 0.9 s for the whole 100-block problem, and
// you sketch an FPGA design that should sustain 16 operations per
// cycle somewhere between 100 and 200 MHz, behind a PCIe-class link.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

func main() {
	design := rat.Parameters{
		Name: "block transform",
		Dataset: rat.DatasetParams{
			ElementsIn:      65536,
			ElementsOut:     65536,
			BytesPerElement: 4,
		},
		Comm: rat.CommParams{
			IdealThroughput: rat.GBps(2),
			AlphaWrite:      0.6, // from your interconnect microbenchmark
			AlphaRead:       0.6,
		},
		Comp: rat.CompParams{
			OpsPerElement:  96, // counted from the algorithm structure
			ThroughputProc: 16, // the parallelism your design sustains
			ClockHz:        rat.MHz(150),
		},
		Soft: rat.SoftwareParams{
			TSoft:      0.9, // measured software baseline
			Iterations: 100,
		},
	}

	pr, err := rat.Predict(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-iteration: t_comm = %.3g s, t_comp = %.3g s\n", pr.TComm, pr.TComp)
	fmt.Printf("single-buffered: t_RC = %.3g s -> speedup %.1f\n", pr.TRCSingle, pr.SpeedupSingle)
	fmt.Printf("double-buffered: t_RC = %.3g s -> speedup %.1f\n", pr.TRCDouble, pr.SpeedupDouble)
	fmt.Printf("communication-bound? %v (comm utilization %.0f%%)\n",
		pr.CommunicationBound(), pr.UtilCommSB*100)

	// How good could it get? The asymptotic limit as parallelism
	// grows, and what the design would need for a 10x goal.
	fmt.Printf("\nspeedup limit (infinite parallelism): %.1f\n", pr.MaxSpeedup())
	need, err := rat.SolveThroughputProc(design, 10, rat.DoubleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for a 10x goal (double-buffered): sustain %.1f ops/cycle\n", need)

	// Bracket the unknown routed clock, as the paper does.
	fmt.Println("\nclock sweep:")
	preds, err := rat.SweepClock(design, []float64{rat.MHz(100), rat.MHz(150), rat.MHz(200)})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range preds {
		fmt.Printf("  %3.0f MHz: speedup %.1f (SB) / %.1f (DB)\n",
			p.Params.Comp.ClockHz/1e6, p.SpeedupSingle, p.SpeedupDouble)
	}
}
