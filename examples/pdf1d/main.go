// The paper's walkthrough, end to end: analyze the 1-D PDF estimation
// design (Section 4) with all three RAT tests, then "build" it on the
// simulated Nallatech platform and compare prediction with measurement.
//
// Run with: go run ./examples/pdf1d
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	rat "github.com/chrec/rat"
)

func main() {
	// The Table 2 worksheet, exactly as published.
	design, err := rat.CaseStudy(rat.PDF1D)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worksheet (Table 2):")
	if err := rat.EncodeWorksheet(os.Stdout, design); err != nil {
		log.Fatal(err)
	}

	// Throughput test across the paper's clock bracket.
	fmt.Println("\nthroughput test (Table 3 predicted columns):")
	for _, mhz := range []float64{75, 100, 150} {
		pr := rat.MustPredict(design.WithClock(rat.MHz(mhz)))
		fmt.Printf("  %3.0f MHz: t_comm %.2e  t_comp %.2e  t_RC %.2e  speedup %.1f\n",
			mhz, pr.TComm, pr.TComp, pr.TRCSingle, pr.SpeedupSingle)
	}

	// Precision test: the candidates the designers weighed. The
	// errors here are the published study's character (measure your
	// own with your kernel against a float64 reference).
	dev, _ := rat.LookupDevice("Virtex-4 LX100")
	mul18, _ := rat.OperatorCost(dev, rat.OpMul, 18)
	mul32, _ := rat.OperatorCost(dev, rat.OpMul, 32)
	candidates := []rat.PrecisionCandidate{
		{Label: "18-bit fixed", Width: 18, MaxError: 0.02, MulCost: mul18},
		{Label: "32-bit fixed", Width: 32, MaxError: 0.002, MulCost: mul32},
		{Label: "32-bit float", Width: 0, MaxError: 1e-6, MulCost: rat.Demand{DSP: 4, Logic: 600}},
	}
	chosen, notes, err := rat.RecommendPrecision(candidates, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprecision test: chose %s\n", chosen.Label)
	for _, n := range notes {
		fmt.Println("  " + n)
	}

	// Resource test: a first-order demand estimate for the 8-pipeline
	// design (one MAC each, Gaussian tables, buffers, wrapper).
	demand := rat.Demand{DSP: 8, BRAM: 25, Logic: 6800}
	rep := rat.CheckResources(dev, demand)
	fmt.Printf("\nresource test on %s: fits=%v, limiting=%s (%.0f%%)\n",
		dev.Name, rep.Fits, dev.KindName(rep.Limiting), rep.Utilization(rep.Limiting)*100)

	// The full Figure 1 flow in one call.
	out, err := rat.Evaluate(rat.Requirements{
		TargetSpeedup:  10,
		Buffering:      rat.SingleBuffered,
		ErrorTolerance: 0.03,
	}, rat.Design{Params: design, Candidates: candidates, Demand: demand, Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmethodology verdict: %v\n", out.Verdict)

	// Now "build" it: run the simulated Nallatech platform, the
	// reproduction's stand-in for the paper's measured hardware.
	sc, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	m, err := rat.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	pr := rat.MustPredict(design)
	fmt.Printf("\npredicted vs simulated hardware at 150 MHz:\n")
	fmt.Printf("  t_comm: %.2e predicted, %.2e measured (%.1fx under)\n",
		pr.TComm, m.TComm(), m.TComm()/pr.TComm)
	fmt.Printf("  t_comp: %.2e predicted, %.2e measured (%+.0f%%)\n",
		pr.TComp, m.TComp(), (m.TComp()/pr.TComp-1)*100)
	fmt.Printf("  speedup: %.1f predicted, %.1f measured (paper: 10.6 predicted, 7.8 measured)\n",
		pr.SpeedupSingle, m.Speedup(design.Soft.TSoft))

	// Finally, the part a real user does with their own code: measure
	// a live t_soft on this machine. The application here is a small
	// inline Parzen estimator — your kernel goes in its place.
	samples := syntheticSamples(16384)
	bins := make([]float64, 256)
	for i := range bins {
		bins[i] = -1 + (float64(i)+0.5)/128
	}
	start := time.Now()
	density := parzen(samples, bins, 0.12)
	elapsed := time.Since(start).Seconds()
	scaled := elapsed * 204800 / float64(len(samples)) // scale to the paper's dataset
	fmt.Printf("\nlive software baseline on this host: %.3f s for the full dataset\n", scaled)
	fmt.Printf("(the paper's 2007 Xeon took 0.578 s; feed your own t_soft into the worksheet)\n\n")
	fmt.Println("estimated density:")
	fmt.Print(rat.Histogram(density, 72, 8))
}

// syntheticSamples draws a deterministic two-mode dataset.
func syntheticSamples(n int) []float64 {
	out := make([]float64, n)
	s := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / float64(1<<53)
	}
	for i := range out {
		u1, u2 := next(), next()
		for u1 == 0 {
			u1 = next()
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		x := -0.35 + 0.18*z
		if next() < 0.4 {
			x = 0.45 + 0.10*z
		}
		out[i] = math.Max(-0.999, math.Min(0.999, x))
	}
	return out
}

// parzen is the user-side software kernel: a plain Gaussian
// Parzen-window estimate.
func parzen(samples, bins []float64, h float64) []float64 {
	out := make([]float64, len(bins))
	inv := 1 / (2 * h * h)
	scale := 1 / (float64(len(samples)) * h * math.Sqrt(2*math.Pi))
	for _, x := range samples {
		for b, c := range bins {
			d := x - c
			out[b] += scale * math.Exp(-d*d*inv)
		}
	}
	return out
}
