// Designing a brand-new FPGA kernel with RAT, end to end: a 5x5 image
// convolution — the classic FPGA workload — taken from a blank sheet
// to a GO / NO-GO verdict without writing a line of HDL, including two
// turns of the paper's Figure-1 revision loop.
//
// The flow: a kernel design description yields N_ops/element and
// throughput_proc for the throughput test and a demand estimate for
// the resource test; the platform model supplies alphas measured at
// THIS design's transfer sizes (the 2-D PDF study's lesson); failed
// verdicts come back with diagnoses that drive the next revision; and
// the simulated platform plays the role of the eventual bring-up.
//
// Run with: go run ./examples/convolution
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

// Problem geometry: 5x5 convolution over 1024x1024 16-bit images, one
// 128-row tile per FPGA iteration, 40 frames per batch. An element is
// one pixel; each output pixel needs 25 multiplies + 25 adds.
const (
	tileRows   = 128
	width      = 1024
	elements   = tileRows * width
	frames     = 40
	iterations = frames * (1024 / tileRows)
	opsPerPix  = 50
	tSoft      = 0.95 // measured software batch time on the host
)

// design returns the architecture at a given replication: `pipelines`
// parallel 25-tap MAC trees, each retiring one output pixel per cycle.
// The description is encoded per pixel-group so the throughput and
// timing models agree: one element-group of `pipelines` pixels retires
// per cycle.
func design(pipelines int) rat.KernelDesign {
	var units []rat.KernelUnit
	for i := 0; i < 25*pipelines; i++ {
		units = append(units, rat.KernelUnit{Op: rat.OpMAC, Width: 18})
	}
	return rat.KernelDesign{
		Name:            fmt.Sprintf("5x5 convolution (%d pipelines)", pipelines),
		Pipelines:       1, // one group-wide engine; replication is inside the group
		Units:           units,
		CountedOps:      opsPerPix * pipelines,
		ItemsPerElement: 1, // one pixel-group in, one out, per cycle
		ItemsPerCycle:   1,
		PipelineDepth:   30,
		BatchOverhead:   600,
		Derating:        0.9, // margin for line-buffer refills at tile edges
		ElementBits:     16 * pipelines,
	}
}

// worksheet derives the RAT inputs from a design on a platform, with
// the interconnect characterized at the design's actual per-iteration
// transfer size. When the measured rate beats the documented maximum
// (the XD1000's conservative datasheet), the documented figure is
// raised to the measured one so the alphas stay in (0, 1] — the
// worksheet discipline the paper's Table 1 requires.
func worksheet(d rat.KernelDesign, pipelines int, plat rat.Platform, clockHz float64) rat.Parameters {
	groups := elements / pipelines
	bytesPerIter := int64(groups) * int64(2*pipelines)
	wRate := plat.Interconnect.MeasureAlpha(rat.DirWrite, bytesPerIter) * plat.Interconnect.IdealBps
	rRate := plat.Interconnect.MeasureAlpha(rat.DirRead, bytesPerIter) * plat.Interconnect.IdealBps
	ideal := plat.Interconnect.IdealBps
	if wRate > ideal {
		ideal = wRate
	}
	if rRate > ideal {
		ideal = rRate
	}
	return rat.Parameters{
		Name: d.Name,
		Dataset: rat.DatasetParams{
			ElementsIn: int64(groups), ElementsOut: int64(groups),
			BytesPerElement: float64(2 * pipelines),
		},
		Comm: rat.CommParams{
			IdealThroughput: ideal,
			AlphaWrite:      wRate / ideal,
			AlphaRead:       rRate / ideal,
		},
		Comp: rat.CompParams{
			OpsPerElement:  d.OpsPerElement(),
			ThroughputProc: d.WorksheetThroughputProc(),
			ClockHz:        clockHz,
		},
		Soft: rat.SoftwareParams{TSoft: tSoft, Iterations: iterations},
	}
}

func main() {
	const goal = 4.0

	// Revision 1: a single pipeline on the Nallatech card.
	d1 := design(1)
	nalla := rat.NallatechH101()
	p1 := worksheet(d1, 1, nalla, rat.MHz(125))
	fmt.Print(d1.Describe())
	fmt.Printf("\nrevision 1 on %s: alphas %.3f/%.3f at this design's 256 KB transfers\n",
		nalla.Name, p1.Comm.AlphaWrite, p1.Comm.AlphaRead)
	dm1, err := d1.ResourceDemand(nalla.Device, elements, true)
	if err != nil {
		log.Fatal(err)
	}
	out, err := rat.Evaluate(rat.Requirements{TargetSpeedup: goal, Buffering: rat.DoubleBuffered},
		rat.Design{Params: p1, Demand: dm1, Device: nalla.Device})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: %v\n", out.Verdict)
	for _, s := range out.Steps {
		fmt.Printf("  [%v] %s\n", s.Step, s.Detail)
	}
	fmt.Println("\ndiagnosis: the card's read path collapses at 256 KB transfers — no amount of")
	fmt.Println("parallelism helps a communication-bound design. Revise the PLATFORM, not the kernel.")

	// Revision 2: the same kernel on the XD1000's HyperTransport.
	xd := rat.XtremeDataXD1000()
	p2 := worksheet(d1, 1, xd, rat.MHz(125))
	pr2 := rat.MustPredict(p2)
	fmt.Printf("\nrevision 2 on %s: speedup %.1f (DB) — better, still short of %.0fx\n",
		xd.Name, pr2.SpeedupDouble, goal)
	need, err := rat.SolveThroughputProc(p2, goal, rat.DoubleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver: the goal needs %.0f ops/cycle sustained — two pixel pipelines\n", need)

	// Revision 3: two pipelines on the XD1000.
	d3 := design(2)
	p3 := worksheet(d3, 2, xd, rat.MHz(125))
	dm3, err := d3.ResourceDemand(xd.Device, elements/2, true)
	if err != nil {
		log.Fatal(err)
	}
	out3, err := rat.Evaluate(rat.Requirements{TargetSpeedup: goal, Buffering: rat.DoubleBuffered},
		rat.Design{Params: p3, Demand: dm3, Device: xd.Device})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrevision 3: %s\n", d3.Name)
	fmt.Printf("verdict: %v\n", out3.Verdict)
	for _, s := range out3.Steps {
		fmt.Printf("  [%v] %s\n", s.Step, s.Detail)
	}

	// Bring-up on the simulated platform, validated against the
	// prediction.
	pr3 := rat.MustPredict(p3)
	sc := rat.Scenario{
		Name:            "convolution",
		Platform:        xd,
		ClockHz:         p3.Comp.ClockHz,
		Buffering:       rat.DoubleBuffered,
		Iterations:      iterations,
		ElementsIn:      int(p3.Dataset.ElementsIn),
		ElementsOut:     int(p3.Dataset.ElementsOut),
		BytesPerElement: int(p3.Dataset.BytesPerElement),
		KernelCycles: func(_, n int) int64 {
			return d3.CyclesForBatch(n)
		},
	}
	m, err := rat.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	a, err := rat.CompareMeasured(pr3, rat.Measured{
		TComm: m.TComm(), TComp: m.TComp(), TRC: m.TRC(),
	}, rat.DoubleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated bring-up: t_RC %.3f s predicted, %.3f s measured; speedup %.1f\n",
		pr3.TRCDouble, m.TRC(), m.Speedup(tSoft))
	fmt.Println("validation diagnosis:")
	for _, n := range a.Notes {
		fmt.Println("  - " + n)
	}
}
