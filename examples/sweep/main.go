// Design-space exploration with RAT: sweeps, crossovers and the
// composite multi-kernel model. The scenario is a two-stage pipeline —
// a filter kernel followed by a reduction — examined for block-size
// and clock trade-offs before any hardware exists.
//
// Sweeps walk one axis at a time; to search SIX axes exhaustively
// (clock x parallelism x alpha x block x devices x buffering) with a
// top-K and a Pareto frontier, see examples/explore and rat.Explore.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

func main() {
	filter := rat.Parameters{
		Name: "filter stage",
		Dataset: rat.DatasetParams{
			ElementsIn: 32768, ElementsOut: 32768, BytesPerElement: 4,
		},
		Comm: rat.CommParams{IdealThroughput: rat.GBps(1), AlphaWrite: 0.4, AlphaRead: 0.2},
		Comp: rat.CompParams{OpsPerElement: 48, ThroughputProc: 12, ClockHz: rat.MHz(125)},
		Soft: rat.SoftwareParams{TSoft: 1.8, Iterations: 64},
	}
	reduce := filter
	reduce.Name = "reduction stage"
	reduce.Dataset.ElementsOut = 1
	reduce.Comp.OpsPerElement = 6
	reduce.Comp.ThroughputProc = 8
	reduce.Soft.TSoft = 0.2

	// Where does the filter stage flip from compute-bound to
	// communication-bound as the clock rises?
	fc, err := rat.CrossoverClock(filter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter stage crossover clock: %.0f MHz\n", fc/1e6)

	clocks := []float64{rat.MHz(50), rat.MHz(100), rat.MHz(200), rat.MHz(400), rat.MHz(800)}
	pts, err := rat.SweepPoints(filter, clocks, func(p rat.Parameters, v float64) rat.Parameters {
		return p.WithClock(v)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclock sweep (double-buffered):")
	for _, pt := range pts {
		regime := "compute-bound"
		if pt.Prediction.CommunicationBound() {
			regime = "comm-bound"
		}
		fmt.Printf("  %4.0f MHz: t_RC %.4f s, speedup %5.1f  [%s]\n",
			pt.Value/1e6, pt.Prediction.TRCDouble, pt.Prediction.SpeedupDouble, regime)
	}
	if bracket, ok := rat.FindCrossover(pts); ok {
		fmt.Printf("  -> regime flips between %.0f and %.0f MHz\n",
			bracket[0].Value/1e6, bracket[1].Value/1e6)
	}

	// Block-size sweep: bigger blocks amortize per-transfer costs in
	// the analytic model only through N_iter; the total work is
	// constant (the model is linear), so this is a buffering-memory
	// trade, not a speed trade — worth knowing before sizing BRAM.
	fmt.Println("\nblock-size sweep (total work constant):")
	blocks := []float64{8192, 16384, 32768, 65536}
	bpts, err := rat.SweepPoints(filter, blocks, func(p rat.Parameters, v float64) rat.Parameters {
		scale := v / float64(p.Dataset.ElementsIn)
		p.Soft.Iterations = int64(float64(p.Soft.Iterations)/scale + 0.5)
		p.Dataset.ElementsIn = int64(v)
		p.Dataset.ElementsOut = int64(v)
		return p
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range bpts {
		fmt.Printf("  %5.0f elements x %3d iters: t_RC %.4f s\n",
			pt.Value, pt.Prediction.Params.Soft.Iterations, pt.Prediction.TRCSingle)
	}

	// Composite analysis: both stages on one FPGA, sequentially.
	comp, err := rat.PredictComposite([]rat.Stage{
		{Name: filter.Name, Params: filter, Buffering: rat.DoubleBuffered},
		{Name: reduce.Name, Params: reduce, Buffering: rat.SingleBuffered},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomposite application: t_RC %.4f s, speedup %.1f\n", comp.TRC, comp.Speedup)
	for _, st := range comp.Stages {
		fmt.Printf("  %-16s %5.1f%% of execution\n", st.Stage.Name, st.Share*100)
	}
	fmt.Printf("bottleneck: %s — reformulate that one first\n", comp.Bottleneck().Stage.Name)

	// Streaming variant: what if the stages stream instead of
	// block-transferring?
	sp, err := rat.PredictStreaming(filter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming the filter stage: t_RC %.4f s vs %.4f double-buffered (%.2fx)\n",
		sp.TRCStream, sp.TRCDouble, sp.TRCDouble/sp.TRCStream)
}
