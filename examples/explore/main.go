// Exhaustive design-space exploration with RAT: a six-dimension grid
// of candidate designs — clock x parallelism x interconnect efficiency
// x block size x device count x buffering — searched in parallel for
// the best and the cheapest configurations. The worksheet that the
// paper fills in by hand becomes, at ~30 ns per candidate, a space you
// can sweep exhaustively before writing any hardware code.
//
// Run with: go run ./examples/explore
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

func main() {
	// The base worksheet: a image-correlation kernel sketch, in the
	// spirit of the paper's Table 1 inputs.
	base := rat.Parameters{
		Name: "correlation kernel",
		Dataset: rat.DatasetParams{
			ElementsIn: 16384, ElementsOut: 16384, BytesPerElement: 4,
		},
		Comm: rat.CommParams{IdealThroughput: rat.GBps(1), AlphaWrite: 0.37, AlphaRead: 0.37},
		Comp: rat.CompParams{OpsPerElement: 96, ThroughputProc: 8, ClockHz: rat.MHz(100)},
		Soft: rat.SoftwareParams{TSoft: 4.2, Iterations: 256},
	}

	// Six axes. Every combination is one candidate worksheet; the
	// block-size axis conserves total work (iterations re-derived so
	// each candidate processes the same dataset).
	grid := rat.Grid{
		Base:            base,
		Clocks:          []float64{rat.MHz(75), rat.MHz(100), rat.MHz(150), rat.MHz(200)},
		ThroughputProcs: []float64{4, 8, 16, 32},
		Alphas:          []float64{0.16, 0.37, 0.62},
		BlockSizes:      []int64{4096, 16384, 65536},
		Devices:         []int{1, 2, 4},
		Topology:        rat.IndependentChannels,
		// Bufferings empty: explore single- AND double-buffered.
	}
	if err := grid.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d candidate designs across 6 axes\n\n", grid.Size())

	// Search 1: the fastest designs, unconstrained.
	res, err := rat.Explore(grid, rat.ExploreOptions{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top 5 by speedup (%d candidates in %v, %.1f M/s, %d workers):\n",
		res.Evaluated, res.Elapsed.Round(1000), res.CandidatesPerSec/1e6, res.Workers)
	for _, c := range res.Top {
		fmt.Printf("  %4.0f MHz  tp %2.0f  alpha %.2f  block %5d  x%d dev  %-15s  speedup %6.1f  t_RC %.3e s\n",
			c.ClockHz/1e6, c.ThroughputProc, c.AlphaWrite, c.ElementsIn,
			c.Devices, c.Buffering, c.Speedup, c.TRC)
	}

	// Search 2: the CHEAPEST design meeting a 20x speedup target —
	// fewest devices, least parallelism, lowest clock. This is the
	// question a procurement decision actually asks.
	cheap, err := rat.Explore(grid, rat.ExploreOptions{
		TopK:        1,
		Objective:   rat.MinCost,
		Constraints: rat.ExploreConstraints{MinSpeedup: 20},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheapest design with speedup >= 20 (%d of %d feasible):\n",
		cheap.Feasible, cheap.Evaluated)
	for _, c := range cheap.Top {
		fmt.Printf("  %4.0f MHz  tp %2.0f  alpha %.2f  block %5d  x%d dev  %-15s  speedup %6.1f\n",
			c.ClockHz/1e6, c.ThroughputProc, c.AlphaWrite, c.ElementsIn,
			c.Devices, c.Buffering, c.Speedup)
	}

	// The Pareto frontier: designs where no other candidate is at
	// least as good on speedup AND computation utilization with no
	// more devices. Everything off the frontier is strictly wasteful.
	fmt.Printf("\nPareto frontier (speedup vs. utilization vs. devices): %d designs\n",
		len(res.Frontier))
	for i, c := range res.Frontier {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(res.Frontier)-8)
			break
		}
		fmt.Printf("  %4.0f MHz  tp %2.0f  x%d dev  speedup %6.1f  util_comp %3.0f%%\n",
			c.ClockHz/1e6, c.ThroughputProc, c.Devices, c.Speedup, c.UtilComp*100)
	}
}
