// The 2-D PDF estimation study (Section 5.1): the cautionary tale
// about communication estimates. The worksheet carries alpha values
// from a 2 KB microbenchmark, but the design ships a 256 KB result
// grid back every iteration — and the real link behaves very
// differently at that size. This example reproduces the surprise:
// prediction says 3% communication utilization, the platform delivers
// 19%.
//
// Run with: go run ./examples/pdf2d
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

func main() {
	design, err := rat.CaseStudy(rat.PDF2D)
	if err != nil {
		log.Fatal(err)
	}

	// What the worksheet's single-alpha abstraction predicts.
	pr := rat.MustPredict(design)
	fmt.Printf("prediction at 150 MHz: t_comm %.2e s (util %.0f%%), t_comp %.2e s, speedup %.1f\n",
		pr.TComm, pr.UtilCommSB*100, pr.TComp, pr.SpeedupSingle)

	// What the platform's sustained rate actually does across sizes
	// — the tabulated microbenchmark Section 4.2 recommends.
	ic := rat.NallatechH101().Interconnect
	fmt.Println("\nmeasured alpha_read vs transfer size on the platform:")
	for _, bytes := range []int64{2048, 16384, 65536, 262144} {
		fmt.Printf("  %7d B: %.3f\n", bytes, ic.MeasureAlpha(rat.DirRead, bytes))
	}
	fmt.Println("the worksheet carried the 2 KB value (0.16); the design moves 256 KB per iteration")

	// Run the simulated platform and compare.
	sc, err := rat.CaseStudyScenario(rat.PDF2D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	m, err := rat.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated hardware: t_comm %.2e s (%.1fx the prediction), util %.0f%%, speedup %.1f\n",
		m.TComm(), m.TComm()/pr.TComm, m.UtilComm()*100, m.Speedup(design.Soft.TSoft))

	// The paper's hindsight: with an alpha measured at the actual
	// transfer size, the prediction would have been sound.
	honest := design
	honest.Comm.AlphaRead = ic.MeasureAlpha(rat.DirRead, 262144)
	pr2 := rat.MustPredict(honest)
	fmt.Printf("\nre-predicted with alpha_read measured at 256 KB (%.3f): t_comm %.2e s, util %.0f%%, speedup %.1f\n",
		honest.Comm.AlphaRead, pr2.TComm, pr2.UtilCommSB*100, pr2.SpeedupSingle)

	// Contingency planning: the conservative computation estimate
	// absorbed the surprise — the measured speedup still beat the
	// prediction ("a victory in contingency planning").
	fmt.Printf("\npredicted speedup %.1f vs simulated %.1f: conservatism balanced the comm miss\n",
		pr.SpeedupSingle, m.Speedup(design.Soft.TSoft))
}
