// The molecular-dynamics study (Section 5.2): RAT as a tuning tool for
// data-dependent algorithms. Per-molecule work depends on the dataset's
// locality, so the operation rate cannot be predicted — instead the
// designer picks a speedup goal and solves for the parallelism a
// design would need, then judges whether that parallelism is buildable.
//
// Run with: go run ./examples/md
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

func main() {
	design, err := rat.CaseStudy(rat.MD)
	if err != nil {
		log.Fatal(err)
	}
	at100 := design.WithClock(rat.MHz(100))

	// The tuning-parameter usage: how much parallelism does a 10x
	// goal demand? (Section 5.2 computes ~47 and rounds up to 50.)
	need, err := rat.SolveThroughputProc(at100, 10, rat.SingleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10x goal at 100 MHz needs %.1f ops/cycle sustained\n", need)
	fmt.Printf("the worksheet carries the rounded-up 50\n")

	// Sweep the goal: the ops/cycle wall grows linearly until the
	// interconnect takes over.
	fmt.Println("\nparallelism required per speedup goal:")
	for _, goal := range []float64{2, 5, 10, 20, 50} {
		v, err := rat.SolveThroughputProc(at100, goal, rat.SingleBuffered)
		if err != nil {
			fmt.Printf("  %4.0fx: unreachable (%v)\n", goal, err)
			continue
		}
		fmt.Printf("  %4.0fx: %6.1f ops/cycle\n", goal, v)
	}

	// Predictions across the clock bracket (Table 9).
	fmt.Println("\npredicted performance:")
	preds, err := rat.SweepClock(design, []float64{rat.MHz(75), rat.MHz(100), rat.MHz(150)})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range preds {
		fmt.Printf("  %3.0f MHz: t_RC %.3f s, speedup %.1f\n",
			p.Params.Comp.ClockHz/1e6, p.TRCSingle, p.SpeedupSingle)
	}

	// Simulate the built design on the XD1000 model. The kernel's
	// cycle count depends on the actual neighbour structure of the
	// generated 16384-molecule dataset — data-dependent timing,
	// exactly the property that made MD hard for RAT.
	fmt.Println("\ngenerating and profiling the 16384-molecule dataset...")
	sc, err := rat.CaseStudyScenario(rat.MD, rat.MHz(100), rat.SingleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	m, err := rat.Simulate(sc)
	if err != nil {
		log.Fatal(err)
	}
	pr := rat.MustPredict(at100)
	fmt.Printf("simulated hardware at 100 MHz: t_comp %.3f s vs %.3f predicted\n", m.TComp(), pr.TComp)
	fmt.Printf("measured speedup %.1f against the 10x goal (paper measured 6.6)\n", m.Speedup(design.Soft.TSoft))
	fmt.Printf("sustained %.1f ops/cycle of the solved-for 50 — the qualitative lesson:\n", m.EffectiveOpsPerCycle(design.Comp.OpsPerElement))
	fmt.Println("RAT flagged that massive parallelism was required; the built design fell short")
	fmt.Println("of the goal but landed the same order of magnitude, as the paper reports.")
}
