// Multi-FPGA scaling analysis (the Section 6 extension): how many
// devices is the 2-D PDF design worth, and what does the interconnect
// topology cost? Includes the uncertainty-interval view: given how
// rough the inputs are, is a 50x goal on 8 devices credible?
//
// Run with: go run ./examples/multifpga
package main

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

func main() {
	design, err := rat.CaseStudy(rat.PDF2D)
	if err != nil {
		log.Fatal(err)
	}

	// Where does a shared host channel stop helping?
	knee, err := rat.ScalingKnee(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-channel scaling knee: %.1f devices\n\n", knee)

	fmt.Println("devices  shared-speedup  independent-speedup  shared-efficiency")
	for _, nd := range []int{1, 2, 4, 8, 16, 32, 64} {
		sh, err := rat.PredictMulti(design, rat.MultiConfig{Devices: nd, Topology: rat.SharedChannel})
		if err != nil {
			log.Fatal(err)
		}
		in, err := rat.PredictMulti(design, rat.MultiConfig{Devices: nd, Topology: rat.IndependentChannels})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %14.1f  %19.1f  %17.2f\n",
			nd, sh.SpeedupDouble, in.SpeedupDouble, sh.ScalingEfficiency)
	}

	// An 8-device shared-channel system against a 50x goal, honestly:
	// the worksheet inputs are estimates, so bracket them.
	eight := design
	// Fold the 8-way split into the worksheet: each device computes
	// an eighth of the block (the multi model does this internally;
	// here we bracket the single-device inputs first).
	bounds, err := rat.PredictBounds(eight, rat.Uncertainty{
		Alpha: 0.2, OpsPerElement: 0.1, ThroughputProc: 0.25, Clock: 1.0 / 3.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n8-device shared-channel system, 50x goal:")
	for _, corner := range []struct {
		label  string
		params rat.Parameters
	}{
		{"worst case", bounds.Worst.Params},
		{"nominal   ", bounds.Nominal.Params},
		{"best case ", bounds.Best.Params},
	} {
		mp, err := rat.PredictMulti(corner.params, rat.MultiConfig{Devices: 8, Topology: rat.SharedChannel})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "misses"
		if mp.SpeedupDouble >= 50 {
			verdict = "meets"
		}
		fmt.Printf("  %s: speedup %6.1f -> %s the goal\n", corner.label, mp.SpeedupDouble, verdict)
	}
	fmt.Println("\nverdict: uncertain — refine the throughput_proc and alpha estimates")
	fmt.Println("(microbenchmark the real link at the real transfer size) before buying hardware.")
}
