// Package rat is the RC Amenability Test: a methodology for predicting
// the performance of an application design migrated to an FPGA
// platform before any hardware code is written, reproducing Holland,
// Nagarajan, Conger, Jacobs and George, "RAT: A Methodology for
// Predicting Performance in Application Design Migration to FPGAs"
// (HPRCTA'07).
//
// The package is a facade over the library's internal packages,
// re-exporting the pieces a downstream user needs:
//
//   - the throughput test (Eqs. 1-11): Parameters -> Predict ->
//     Prediction, plus the inverse solvers, sweeps, multi-kernel
//     composition and the streaming variant;
//   - the numerical-precision test: candidate formats, empirical error
//     measurement hooks, minimum-width search and the cost-aware
//     recommendation;
//   - the resource test: the FPGA device database, operator cost
//     model, demand estimation and fit checking;
//   - the Figure 1 methodology driver tying the three together; and
//   - the worksheet file format used by the rat command-line tool.
//
// A minimal session, predicting the paper's 1-D PDF walkthrough:
//
//	p := rat.Parameters{
//		Dataset: rat.DatasetParams{ElementsIn: 512, ElementsOut: 1, BytesPerElement: 4},
//		Comm:    rat.CommParams{IdealThroughput: rat.MBps(1000), AlphaWrite: 0.37, AlphaRead: 0.16},
//		Comp:    rat.CompParams{OpsPerElement: 768, ThroughputProc: 20, ClockHz: rat.MHz(150)},
//		Soft:    rat.SoftwareParams{TSoft: 0.578, Iterations: 400},
//	}
//	pr, err := rat.Predict(p)
//	// pr.SpeedupSingle == 10.58, the paper's 10.6
//
// The simulated RC platforms that stand in for the paper's hardware
// testbeds live behind rat.NallatechH101, rat.XtremeDataXD1000 and
// rat.Simulate; the three published case studies are available intact
// through rat.CaseStudy and rat.CaseStudyScenario.
//
// The methodology is also servable over HTTP/JSON: cmd/ratd is the
// prediction daemon and the client package is its typed Go client,
// both returning bit-for-bit what Predict and PredictMulti compute
// locally. See docs/SERVER.md.
package rat

import (
	"io"

	"github.com/chrec/rat/internal/core"
	"github.com/chrec/rat/internal/explore"
	"github.com/chrec/rat/internal/kernel"
	"github.com/chrec/rat/internal/methodology"
	"github.com/chrec/rat/internal/power"
	"github.com/chrec/rat/internal/precision"
	"github.com/chrec/rat/internal/resource"
	"github.com/chrec/rat/internal/validate"
	"github.com/chrec/rat/internal/worksheet"
)

// Throughput-test types (Section 3.1 / Table 1).
type (
	// Parameters is the complete RAT input worksheet.
	Parameters = core.Parameters
	// DatasetParams describe one buffered block of the problem.
	DatasetParams = core.DatasetParams
	// CommParams describe the CPU<->FPGA interconnect.
	CommParams = core.CommParams
	// CompParams describe the FPGA computation.
	CompParams = core.CompParams
	// SoftwareParams anchor the speedup baseline.
	SoftwareParams = core.SoftwareParams
	// Prediction is the full throughput-test output.
	Prediction = core.Prediction
	// Buffering selects the overlap discipline of Figure 2.
	Buffering = core.Buffering
	// StreamingPrediction is the streaming-variant output.
	StreamingPrediction = core.StreamingPrediction
	// Stage is one kernel of a multi-kernel application.
	Stage = core.Stage
	// CompositeResult aggregates a multi-kernel analysis.
	CompositeResult = core.CompositeResult
	// SweepPoint pairs a swept value with its prediction.
	SweepPoint = core.SweepPoint
	// MultiConfig describes a multi-FPGA system (Section 6 extension).
	MultiConfig = core.MultiConfig
	// MultiPrediction is the multi-FPGA throughput-test output.
	MultiPrediction = core.MultiPrediction
	// Topology selects the multi-FPGA interconnect arrangement.
	Topology = core.Topology
	// Uncertainty gives relative half-widths for estimated inputs.
	Uncertainty = core.Uncertainty
	// Bounds is an interval prediction from uncertain inputs.
	Bounds = core.Bounds
	// TargetVerdict classifies a goal against interval bounds.
	TargetVerdict = core.TargetVerdict
)

// Multi-FPGA topologies and interval-verdict values.
const (
	SharedChannel       = core.SharedChannel
	IndependentChannels = core.IndependentChannels

	TargetImpossible = core.TargetImpossible
	TargetUncertain  = core.TargetUncertain
	TargetCertain    = core.TargetCertain
)

// Buffering disciplines.
const (
	SingleBuffered = core.SingleBuffered
	DoubleBuffered = core.DoubleBuffered
)

// Unit helpers for the paper's customary units.
var (
	// MBps converts decimal megabytes per second to bytes/second.
	MBps = core.MBps
	// GBps converts decimal gigabytes per second to bytes/second.
	GBps = core.GBps
	// MHz converts megahertz to hertz.
	MHz = core.MHz
)

// Throughput test: forward prediction (Eqs. 1-11).
var (
	// Predict evaluates the throughput test.
	Predict = core.Predict
	// MustPredict is Predict for known-valid parameters.
	MustPredict = core.MustPredict
	// PredictStreaming evaluates the streaming variant.
	PredictStreaming = core.PredictStreaming
	// PredictComposite analyzes a multi-kernel application.
	PredictComposite = core.PredictComposite
	// PredictMulti evaluates the multi-FPGA extension.
	PredictMulti = core.PredictMulti
	// ScalingKnee locates the shared-channel saturation point.
	ScalingKnee = core.ScalingKnee
	// SweepDevices evaluates multi-FPGA scaling curves.
	SweepDevices = core.SweepDevices
	// PredictBounds brackets a prediction under input uncertainty.
	PredictBounds = core.PredictBounds
)

// Inverse solvers and design-space exploration.
var (
	// SolveThroughputProc returns the ops/cycle a target speedup needs.
	SolveThroughputProc = core.SolveThroughputProc
	// SolveClock returns the clock frequency a target speedup needs.
	SolveClock = core.SolveClock
	// SolveAlpha returns the interconnect efficiency a target needs.
	SolveAlpha = core.SolveAlpha
	// RequiredTSoft inverts the break-even question.
	RequiredTSoft = core.RequiredTSoft
	// CrossoverClock returns the comm/compute-bound boundary clock.
	CrossoverClock = core.CrossoverClock
	// SweepClock evaluates a prediction across clock frequencies.
	SweepClock = core.SweepClock
	// SweepThroughputProc evaluates across sustained ops/cycle.
	SweepThroughputProc = core.SweepThroughputProc
	// Sweep evaluates across any single mutated parameter.
	Sweep = core.Sweep
	// SweepPoints pairs swept values with predictions.
	SweepPoints = core.SweepPoints
	// FindCrossover locates a comm/compute-bound regime flip.
	FindCrossover = core.FindCrossover
)

// Batch evaluation: the zero-allocation path behind large sweeps and
// the exploration engine.
var (
	// PredictInto evaluates the throughput test into caller storage.
	PredictInto = core.PredictInto
	// PredictBatch evaluates a whole slice of worksheets at once.
	PredictBatch = core.PredictBatch
)

// Design-space exploration: parallel evaluation of a Cartesian grid of
// candidate worksheets with streaming top-K and Pareto-frontier
// selection (package internal/explore; see docs/EXPLORE.md).
type (
	// Grid is a Cartesian design space around a base worksheet.
	Grid = explore.Grid
	// ExploreOptions configure an exploration run.
	ExploreOptions = explore.Options
	// ExploreConstraints filter candidates before ranking.
	ExploreConstraints = explore.Constraints
	// ExploreResult is the outcome of exploring a grid.
	ExploreResult = explore.Result
	// ExploreCandidate is one evaluated design point.
	ExploreCandidate = explore.Candidate
	// ExploreObjective selects what "best" means for the top-K.
	ExploreObjective = explore.Objective
)

// Exploration objectives.
const (
	MaxSpeedup = explore.MaxSpeedup
	MinTRC     = explore.MinTRC
	MinCost    = explore.MinCost
)

var (
	// Explore evaluates every candidate in a grid, in parallel, and
	// returns the top-K and the Pareto frontier. The result is
	// identical for any worker count.
	Explore = explore.Run
	// Frontier extracts the Pareto-optimal subset of candidates.
	Frontier = explore.Frontier
	// ParseObjective converts an objective name back to a value.
	ParseObjective = explore.ParseObjective
)

// Sentinel errors of the throughput test.
var (
	// ErrInvalidParameters tags worksheet validation failures.
	ErrInvalidParameters = core.ErrInvalidParameters
	// ErrUnreachable tags speedup targets no parameter value reaches.
	ErrUnreachable = core.ErrUnreachable
)

// Precision test (Section 3.2).
type (
	// PrecisionCandidate is one number-format option.
	PrecisionCandidate = precision.Candidate
)

var (
	// RecommendPrecision applies the Section 4.2 decision rule.
	RecommendPrecision = precision.Recommend
	// MinWidth searches for the narrowest format meeting a tolerance.
	MinWidth = precision.MinWidth
	// FixedCandidate builds a fixed-point trade-study row.
	FixedCandidate = precision.FixedCandidate
	// Float32Candidate builds the floating-point comparison row.
	Float32Candidate = precision.Float32Candidate
	// RelativeError measures peak-normalized kernel error.
	RelativeError = precision.RelativeError
	// ErrUnrealizable tags tolerances no candidate meets.
	ErrUnrealizable = precision.ErrUnrealizable
)

// Resource test (Section 3.3).
type (
	// Device is an FPGA part's resource inventory.
	Device = resource.Device
	// Demand is an estimated resource requirement.
	Demand = resource.Demand
	// ResourceReport is the outcome of the resource test.
	ResourceReport = resource.Report
	// ResourceKind names a resource class.
	ResourceKind = resource.Kind
	// OpClass names an operator for the cost model.
	OpClass = resource.OpClass
)

// Resource classes.
const (
	Logic = resource.Logic
	BRAM  = resource.BRAM
	DSP   = resource.DSP
)

// Operator classes for OperatorCost.
const (
	OpAdd  = resource.OpAdd
	OpMul  = resource.OpMul
	OpMAC  = resource.OpMAC
	OpDiv  = resource.OpDiv
	OpSqrt = resource.OpSqrt
	OpLUT  = resource.OpLUT
	OpReg  = resource.OpReg
)

var (
	// LookupDevice finds a device in the built-in database.
	LookupDevice = resource.Lookup
	// Devices lists the database.
	Devices = resource.Devices
	// RegisterDevice adds a custom part.
	RegisterDevice = resource.Register
	// OperatorCost prices one operator instance on a device.
	OperatorCost = resource.OperatorCost
	// CheckResources runs the fit check.
	CheckResources = resource.Check
	// MaxReplicas answers the scalability question.
	MaxReplicas = resource.MaxReplicas
)

// Methodology driver (Figure 1).
type (
	// Requirements are the designer's acceptance criteria.
	Requirements = methodology.Requirements
	// Design bundles the three tests' inputs.
	Design = methodology.Design
	// Outcome records one methodology pass.
	Outcome = methodology.Outcome
	// Verdict is PROCEED or NEW DESIGN.
	Verdict = methodology.Verdict
)

// Verdicts.
const (
	Proceed   = methodology.Proceed
	NewDesign = methodology.NewDesign
)

// Evaluate runs one pass of the Figure 1 methodology flow.
var Evaluate = methodology.Evaluate

// Post-measurement validation (the Sections 4.3/5.1/5.2 analysis).
type (
	// Measured holds times read off the real or simulated platform.
	Measured = validate.Measured
	// ValidationAnalysis is the per-term comparison with diagnoses.
	ValidationAnalysis = validate.Analysis
	// ValidationTerm is one compared quantity.
	ValidationTerm = validate.Term
)

// CompareMeasured analyzes a prediction against measured times,
// classifying each term and diagnosing recognizable error signatures.
var CompareMeasured = validate.Compare

// Kernel design descriptions: replicated-pipeline architectures from
// which the worksheet's N_ops/element and throughput_proc derive, along
// with resource demand and cycle-accurate batch timing.
type (
	// KernelDesign describes a replicated-pipeline kernel.
	KernelDesign = kernel.Design
	// KernelUnit is one operator instance inside a pipeline.
	KernelUnit = kernel.Unit
)

// ErrBadDesign tags kernel-design validation failures.
var ErrBadDesign = kernel.ErrBadDesign

// Power estimation (the Section 1 speed/area/power triad's third leg).
type PowerModel = power.Model

var (
	// PowerForDevice returns first-order coefficients for a family.
	PowerForDevice = power.ForDevice
	// EstimatePower returns mean watts for a design on a device.
	EstimatePower = power.Estimate
	// CompareEnergy weighs an FPGA run against the CPU baseline run.
	CompareEnergy = power.CompareEnergy
)

// Worksheet file format.

// DecodeWorksheet parses a worksheet file into Parameters.
func DecodeWorksheet(r io.Reader) (Parameters, error) { return worksheet.Decode(r) }

// EncodeWorksheet writes Parameters as a worksheet file.
func EncodeWorksheet(w io.Writer, p Parameters) error { return worksheet.Encode(w, p) }

// DecodeWorksheetJSON parses the JSON worksheet form.
func DecodeWorksheetJSON(r io.Reader) (Parameters, error) { return worksheet.DecodeJSON(r) }

// EncodeWorksheetJSON writes the JSON worksheet form.
func EncodeWorksheetJSON(w io.Writer, p Parameters) error { return worksheet.EncodeJSON(w, p) }

// DecodeProject parses a multi-stage JSON project file (the Section 6
// several-algorithms case) into composite stages.
func DecodeProject(r io.Reader) (string, []Stage, error) { return worksheet.DecodeProject(r) }

// EncodeProject writes stages as a JSON project file.
func EncodeProject(w io.Writer, name string, stages []Stage) error {
	return worksheet.EncodeProject(w, name, stages)
}
