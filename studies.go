package rat

import (
	"fmt"

	"github.com/chrec/rat/internal/apps/md"
	"github.com/chrec/rat/internal/apps/pdf1d"
	"github.com/chrec/rat/internal/apps/pdf2d"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/platform"
	"github.com/chrec/rat/internal/rcsim"
	"github.com/chrec/rat/internal/report"
	"github.com/chrec/rat/internal/trace"
)

// Platform is a simulated RC system: interconnect timing model, device
// inventory and plausible clock range. Two models ship, standing in
// for the paper's hardware testbeds.
type Platform = platform.Platform

// Direction distinguishes interconnect transfer directions from the
// host's point of view.
type Direction = platform.Direction

// Interconnect directions.
const (
	DirWrite = platform.Write // host -> FPGA input data
	DirRead  = platform.Read  // FPGA -> host results
)

// Built-in platform models.
var (
	// NallatechH101 models the Virtex-4 LX100 card of the PDF case
	// studies (133 MHz PCI-X).
	NallatechH101 = platform.NallatechH101
	// XtremeDataXD1000 models the Stratix-II EP2S180 system of the
	// MD case study (HyperTransport).
	XtremeDataXD1000 = platform.XtremeDataXD1000
	// PlatformByName resolves a platform by a short name.
	PlatformByName = platform.ByName
)

// Scenario describes one simulated-platform run; Measurement is what
// the run "measures" — the actual columns of the paper's tables.
// MultiScenario fans a scenario out across several devices.
type (
	Scenario      = rcsim.Scenario
	Measurement   = rcsim.Measurement
	MultiScenario = rcsim.MultiScenario
)

// Simulate runs a scenario on the simulated platform; SimulateMulti
// runs the multi-FPGA fan-out; SimulateStreaming runs the Section 3.1
// streaming discipline (independent full-duplex channels, three-stage
// pipeline).
var (
	Simulate          = rcsim.Run
	SimulateMulti     = rcsim.RunMulti
	SimulateStreaming = rcsim.RunStreaming
)

// TraceRecorder captures a run's activity timeline; its Gantt method
// renders the Figure 2 overlap picture.
type TraceRecorder = trace.Recorder

// Histogram renders non-negative values as a terminal column chart —
// a convenience for eyeballing density estimates and sweep results.
var Histogram = report.Histogram

// CaseStudyID selects one of the paper's three case studies.
type CaseStudyID = paper.Case

// Case-study identifiers.
const (
	PDF1D = paper.PDF1D
	PDF2D = paper.PDF2D
	MD    = paper.MD
)

// CaseStudy returns the canonical worksheet of a published case study
// (Tables 2, 5 and 8): the exact parameters the paper analyzed.
func CaseStudy(id CaseStudyID) (Parameters, error) {
	switch id {
	case PDF1D, PDF2D, MD:
		return paper.Params(id), nil
	default:
		return Parameters{}, fmt.Errorf("rat: unknown case study %q", id)
	}
}

// CaseStudyScenario builds the simulated-platform run of a published
// case study at the given clock — the reproduction's stand-in for the
// paper's hardware measurement. The MD scenario generates and profiles
// its canonical 16384-molecule dataset, which takes a second or two.
func CaseStudyScenario(id CaseStudyID, clockHz float64, b Buffering) (Scenario, error) {
	switch id {
	case PDF1D:
		return pdf1d.Scenario(clockHz, b), nil
	case PDF2D:
		return pdf2d.Scenario(clockHz, b), nil
	case MD:
		sys := md.GenerateSystem(md.Molecules, 1)
		return md.Scenario(sys, clockHz, b)
	default:
		return Scenario{}, fmt.Errorf("rat: unknown case study %q", id)
	}
}
