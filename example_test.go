package rat_test

import (
	"fmt"
	"log"

	rat "github.com/chrec/rat"
)

// The paper's Section 4 walkthrough: predict the 1-D PDF estimation
// design's performance from its worksheet.
func ExamplePredict() {
	design := rat.Parameters{
		Dataset: rat.DatasetParams{ElementsIn: 512, ElementsOut: 1, BytesPerElement: 4},
		Comm:    rat.CommParams{IdealThroughput: rat.MBps(1000), AlphaWrite: 0.37, AlphaRead: 0.16},
		Comp:    rat.CompParams{OpsPerElement: 768, ThroughputProc: 20, ClockHz: rat.MHz(150)},
		Soft:    rat.SoftwareParams{TSoft: 0.578, Iterations: 400},
	}
	pr, err := rat.Predict(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t_comp = %.2e s\n", pr.TComp)
	fmt.Printf("speedup = %.1f\n", pr.SpeedupSingle)
	// Output:
	// t_comp = 1.31e-04 s
	// speedup = 10.6
}

// The molecular-dynamics tuning-parameter usage (Section 5.2): solve
// for the parallelism a 10x goal demands instead of predicting forward.
func ExampleSolveThroughputProc() {
	design, err := rat.CaseStudy(rat.MD)
	if err != nil {
		log.Fatal(err)
	}
	need, err := rat.SolveThroughputProc(design.WithClock(rat.MHz(100)), 10, rat.SingleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("required: %.1f ops/cycle (the paper rounds up to 50)\n", need)
	// Output:
	// required: 46.7 ops/cycle (the paper rounds up to 50)
}

// Interval prediction: the paper sweeps clock values to bracket the
// unknown; PredictBounds generalizes that to every estimated input.
func ExamplePredictBounds() {
	design, err := rat.CaseStudy(rat.PDF1D)
	if err != nil {
		log.Fatal(err)
	}
	b, err := rat.PredictBounds(design.WithClock(rat.MHz(112.5)), rat.Uncertainty{Clock: 1.0 / 3.0})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := b.SpeedupRange(rat.SingleBuffered)
	fmt.Printf("speedup in [%.1f, %.1f]\n", lo, hi)
	fmt.Println("10x goal:", b.MeetsTarget(10, rat.SingleBuffered))
	// Output:
	// speedup in [5.4, 10.6]
	// 10x goal: uncertain
}

// Multi-FPGA scaling (Section 6): the shared host channel caps how far
// added devices help.
func ExamplePredictMulti() {
	design, err := rat.CaseStudy(rat.PDF2D)
	if err != nil {
		log.Fatal(err)
	}
	knee, err := rat.ScalingKnee(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knee at %.0f devices\n", knee)
	mp, err := rat.PredictMulti(design, rat.MultiConfig{Devices: 64, Topology: rat.SharedChannel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64 shared devices: efficiency %.2f\n", mp.ScalingEfficiency)
	// Output:
	// knee at 34 devices
	// 64 shared devices: efficiency 0.53
}

// The resource test (Section 3.3): check a demand estimate against a
// device from the database.
func ExampleCheckResources() {
	dev, ok := rat.LookupDevice("Virtex-4 LX100")
	if !ok {
		log.Fatal("unknown device")
	}
	rep := rat.CheckResources(dev, rat.Demand{DSP: 8, BRAM: 25, Logic: 6800})
	fmt.Println("fits:", rep.Fits)
	fmt.Printf("limiting: %s at %.0f%%\n", dev.KindName(rep.Limiting), rep.Utilization(rep.Limiting)*100)
	// Output:
	// fits: true
	// limiting: Slices at 14%
}

// The full Figure 1 methodology in one call.
func ExampleEvaluate() {
	design, err := rat.CaseStudy(rat.PDF1D)
	if err != nil {
		log.Fatal(err)
	}
	dev, _ := rat.LookupDevice("Virtex-4 LX100")
	out, err := rat.Evaluate(
		rat.Requirements{TargetSpeedup: 10, Buffering: rat.SingleBuffered},
		rat.Design{Params: design, Demand: rat.Demand{DSP: 8, BRAM: 25, Logic: 6800}, Device: dev},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", out.Verdict)
	// Output:
	// verdict: PROCEED
}

// Post-measurement validation (Section 4.3): diagnose a prediction
// against the numbers read off the hardware.
func ExampleCompareMeasured() {
	design, err := rat.CaseStudy(rat.PDF1D)
	if err != nil {
		log.Fatal(err)
	}
	pr := rat.MustPredict(design)
	// The paper's measured 1-D PDF values.
	a, err := rat.CompareMeasured(pr, rat.Measured{TComm: 2.50e-5, TComp: 1.39e-4, TRC: 7.45e-2}, rat.SingleBuffered)
	if err != nil {
		log.Fatal(err)
	}
	comm, _ := a.Term("t_comm")
	comp, _ := a.Term("t_comp")
	fmt.Println("t_comm:", comm.Verdict)
	fmt.Println("t_comp:", comp.Verdict)
	// Output:
	// t_comm: optimistic
	// t_comp: accurate
}
