// Benchmarks regenerating every table and figure of the paper's
// evaluation (run the ratbench command for the rendered side-by-side
// output), plus micro-benchmarks of the library's hot paths.
package rat_test

import (
	"testing"

	rat "github.com/chrec/rat"
	"github.com/chrec/rat/internal/harness"
	"github.com/chrec/rat/internal/paper"
	"github.com/chrec/rat/internal/worksheet"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFigure1Methodology(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFigure2Overlap(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFigure3Architecture(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkTable1Schema(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkTable2PDF1DInputs(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3PDF1DPerformance(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4PDF1DResources(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable5PDF2DInputs(b *testing.B)      { benchExperiment(b, "table5") }
func BenchmarkTable6PDF2DPerformance(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7PDF2DResources(b *testing.B)   { benchExperiment(b, "table7") }
func BenchmarkTable8MDInputs(b *testing.B)         { benchExperiment(b, "table8") }
func BenchmarkTable9MDPerformance(b *testing.B)    { benchExperiment(b, "table9") }
func BenchmarkTable10MDResources(b *testing.B)     { benchExperiment(b, "table10") }
func BenchmarkPrecisionTradeStudy(b *testing.B)    { benchExperiment(b, "precision") }
func BenchmarkInverseSolver(b *testing.B)          { benchExperiment(b, "solver") }
func BenchmarkAlphaMicrobenchmark(b *testing.B)    { benchExperiment(b, "alphatable") }
func BenchmarkExtMultiFPGA(b *testing.B)           { benchExperiment(b, "ext-multifpga") }
func BenchmarkExtBounds(b *testing.B)              { benchExperiment(b, "ext-bounds") }
func BenchmarkExtAccuracy(b *testing.B)            { benchExperiment(b, "ext-accuracy") }
func BenchmarkExtPower(b *testing.B)               { benchExperiment(b, "ext-power") }

// Micro-benchmarks of the library's hot paths.

// BenchmarkPredict times one full throughput-test evaluation — the
// operation a design-space search calls millions of times.
func BenchmarkPredict(b *testing.B) {
	p := paper.PDF1DParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rat.Predict(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveThroughputProc times the inverse solver.
func BenchmarkSolveThroughputProc(b *testing.B) {
	p := paper.MDParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rat.SolveThroughputProc(p, 10, rat.SingleBuffered); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatePDF1D times a full 400-iteration simulated-platform
// run (single-buffered, ~2400 discrete events).
func BenchmarkSimulatePDF1D(b *testing.B) {
	sc, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rat.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatePDF1DDouble times the double-buffered discipline,
// which exercises the buffer-dependency scheduling paths.
func BenchmarkSimulatePDF1DDouble(b *testing.B) {
	sc, err := rat.CaseStudyScenario(rat.PDF1D, rat.MHz(150), rat.DoubleBuffered)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rat.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateStreaming times the streaming-discipline simulation
// of the 2-D PDF scenario.
func BenchmarkSimulateStreaming(b *testing.B) {
	sc, err := rat.CaseStudyScenario(rat.PDF2D, rat.MHz(150), rat.SingleBuffered)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rat.SimulateStreaming(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorksheetRoundTrip times encode+decode of a worksheet file.
func BenchmarkWorksheetRoundTrip(b *testing.B) {
	p := paper.PDF2DParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := worksheet.EncodeString(p)
		if _, err := worksheet.DecodeString(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepClock times a 100-point clock sweep.
func BenchmarkSweepClock(b *testing.B) {
	p := paper.PDF1DParams()
	clocks := make([]float64, 100)
	for i := range clocks {
		clocks[i] = rat.MHz(50 + float64(i)*2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rat.SweepClock(p, clocks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatch times the zero-allocation batch kernel over a
// 1024-worksheet slab; ns/op divided by 1024 is the per-candidate cost
// a grid exploration pays. Must report 0 allocs/op.
func BenchmarkPredictBatch(b *testing.B) {
	ps := make([]rat.Parameters, 1024)
	for i := range ps {
		ps[i] = paper.PDF1DParams().WithClock(rat.MHz(50 + float64(i%200)))
	}
	out := make([]rat.Prediction, len(ps))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rat.PredictBatch(ps, out); err != nil {
			b.Fatal(err)
		}
	}
}

// exploreBenchGrid returns a 1,044,480-candidate six-dimension grid
// (48 clocks x 34 tp x 8 alphas x 4 blocks x 5 devices x 2 bufferings).
func exploreBenchGrid() rat.Grid {
	clocks := make([]float64, 48)
	for i := range clocks {
		clocks[i] = rat.MHz(50 + float64(i)*5)
	}
	tps := make([]float64, 34)
	for i := range tps {
		tps[i] = 1 + float64(i)
	}
	alphas := make([]float64, 8)
	for i := range alphas {
		alphas[i] = 0.05 + 0.11*float64(i)
	}
	return rat.Grid{
		Base:            paper.PDF1DParams(),
		Clocks:          clocks,
		ThroughputProcs: tps,
		Alphas:          alphas,
		BlockSizes:      []int64{256, 512, 1024, 2048},
		Devices:         []int{1, 2, 4, 8, 16},
		Topology:        rat.SharedChannel,
	}
}

// benchExplore times a full exploration of the million-candidate grid
// at a fixed worker count; compare the -workers variants for the
// parallel scaling on the host machine.
func benchExplore(b *testing.B, workers int) {
	g := exploreBenchGrid()
	opts := rat.ExploreOptions{Workers: workers, TopK: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rat.Explore(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Top) != 10 {
			b.Fatalf("kept %d candidates", len(res.Top))
		}
	}
}

func BenchmarkExplore1Worker(b *testing.B) { benchExplore(b, 1) }
func BenchmarkExplore8Worker(b *testing.B) { benchExplore(b, 8) }
